// Package par is the shared CPU-parallelism substrate of the repository:
// a bounded fork-join parallel-for sized from runtime.GOMAXPROCS, a grain
// heuristic that keeps per-block work large enough to amortize scheduling,
// and pooled scratch buffers that remove per-call allocations from the hot
// numeric paths.
//
// It is the software analog of the paper's agent unit resource manager:
// every parallel site in the repository — tensor kernels, nn layer passes,
// the overlapped frame pipeline in internal/core — draws from the same
// bounded budget, so nested parallelism degrades gracefully to serial
// execution instead of oversubscribing the machine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers returns the process-wide parallelism budget: the current
// runtime.GOMAXPROCS setting.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// EffectiveWorkers clamps a requested worker count to the parallelism the
// process can actually deliver: at least 1, at most GOMAXPROCS. Requesting
// more goroutines than cores is allowed everywhere (blocked pipeline
// workers cost no CPU), but reports must record this value — the
// parallelism a run really had — not the raw flag.
func EffectiveWorkers(n int) int {
	if n < 1 {
		return 1
	}
	if m := MaxWorkers(); n > m {
		return m
	}
	return n
}

// sem bounds the number of *helper* goroutines alive across all concurrent
// For calls — the bounded worker pool, sized from GOMAXPROCS at startup.
// The calling goroutine always participates, so a nested For that finds
// the semaphore exhausted simply runs serially — no deadlock, no
// oversubscription.
var sem = make(chan struct{}, poolSize())

func poolSize() int {
	// Four helper slots per core lets nested sites (pipeline workers that
	// call parallel kernels) share the pool, and the floor of 8 keeps the
	// pool usable when a test raises GOMAXPROCS after package init. The
	// per-call helper count in For is still GOMAXPROCS-1, so concurrency
	// tracks the live setting; this only caps the global total.
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// For runs fn over contiguous blocks covering [0, n), each block at most
// grain indices wide: fn(lo, hi) processes indices lo <= i < hi. Blocks
// are claimed dynamically (work-stealing via an atomic cursor), so uneven
// block costs balance automatically. When the iteration does not split —
// n <= grain, a single worker budget, or no free helper slots — fn runs
// once on the calling goroutine as fn(0, n), which is the exact serial
// semantics.
//
// fn must be safe to call concurrently for disjoint ranges and must not
// assume any block ordering.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	want := MaxWorkers() - 1 // helpers; the caller is the first worker
	if want > blocks-1 {
		want = blocks - 1
	}
	if blocks == 1 || want < 1 {
		fn(0, n)
		return
	}
	var cursor atomic.Int64
	run := func() {
		for {
			b := int(cursor.Add(1)) - 1
			if b >= blocks {
				return
			}
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
spawn:
	for i := 0; i < want; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				run()
			}()
		default:
			// Budget exhausted (deep nesting): the caller handles the rest.
			break spawn
		}
	}
	run()
	wg.Wait()
}

// Grain picks a block size for For over n items where one item costs
// roughly `work` abstract units (flops, pixels). The grain is large enough
// that a block carries at least minWork units — so goroutine hand-off is
// amortized — and large enough that the iteration splits into about four
// blocks per worker, which keeps the dynamic-claim overhead low while
// still balancing uneven blocks. A grain >= n makes For run serially.
func Grain(n, work, minWork int) int {
	if n <= 0 {
		return 1
	}
	if work < 1 {
		work = 1
	}
	g := (minWork + work - 1) / work
	if t := n / (4 * MaxWorkers()); t > g {
		g = t
	}
	if g < 1 {
		g = 1
	}
	return g
}

// MinWorkFloats is the default minimum per-block work (in float operations)
// below which splitting an iteration is not worth a goroutine hand-off.
const MinWorkFloats = 16 * 1024
