package par

import (
	"math/bits"
	"sync"
)

// Scratch buffers: size-classed sync.Pools of []float32, used by the
// tensor and nn hot paths to avoid allocating a fresh backing array per
// call. Buffers come back with arbitrary contents; callers that need
// zeroed memory use GetFloatsZeroed.

const (
	minClassBits = 6  // smallest pooled class: 64 floats
	maxClassBits = 26 // largest pooled class: 64M floats (256 MiB)
)

var floatPools [maxClassBits + 1]sync.Pool

// classFor returns the pool class (power-of-two exponent) holding buffers
// of capacity >= n, or -1 when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < minClassBits {
		c = minClassBits
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// GetFloats returns a []float32 of length n with arbitrary contents,
// drawn from the pool when possible. Pair with PutFloats.
func GetFloats(n int) []float32 {
	c := classFor(n)
	if c < 0 {
		return make([]float32, n)
	}
	if v := floatPools[c].Get(); v != nil {
		return (*v.(*[]float32))[:n]
	}
	return make([]float32, n, 1<<c)
}

// GetFloatsZeroed returns a zero-filled []float32 of length n from the
// pool. Pair with PutFloats.
func GetFloatsZeroed(n int) []float32 {
	s := GetFloats(n)
	clear(s)
	return s
}

// PutFloats returns a buffer obtained from GetFloats to the pool. The
// caller must not touch the slice afterwards.
func PutFloats(s []float32) {
	c := cap(s)
	if c == 0 {
		return
	}
	// Only accept buffers at their class capacity, so a pooled buffer can
	// always serve any request of its class.
	k := bits.Len(uint(c - 1))
	if c != 1<<k || k < minClassBits || k > maxClassBits {
		return
	}
	s = s[:c]
	floatPools[k].Put(&s)
}
