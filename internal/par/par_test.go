package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
		for _, grain := range []int{1, 3, 64, 5000} {
			hits := make([]int32, n)
			For(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForSerialFallbackRunsOnCaller(t *testing.T) {
	// grain >= n must yield exactly one call, fn(0, n), on the caller.
	calls := 0
	For(10, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial fallback got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial fallback called fn %d times", calls)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForNestedDoesNotDeadlock(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var total atomic.Int64
	For(16, 1, func(lo, hi int) {
		For(16, 1, func(lo2, hi2 int) {
			total.Add(int64(hi2 - lo2))
		})
	})
	if total.Load() != 16*16 {
		t.Fatalf("nested total = %d", total.Load())
	}
}

func TestGrain(t *testing.T) {
	// Small totals must not split: grain >= n.
	if g := Grain(8, 10, MinWorkFloats); g < 8 {
		t.Fatalf("tiny workload split: grain=%d", g)
	}
	// Large totals must split into multiple blocks.
	if g := Grain(1<<20, 64, MinWorkFloats); g >= 1<<20 {
		t.Fatalf("large workload did not split: grain=%d", g)
	}
	// Each block carries at least minWork units.
	g := Grain(1<<20, 3, 300)
	if g*3 < 300 {
		t.Fatalf("grain %d too small for minWork", g)
	}
	if Grain(0, 1, 1) != 1 || Grain(5, 0, 0) < 1 {
		t.Fatal("degenerate inputs must yield a positive grain")
	}
}

func TestFloatPoolRoundTrip(t *testing.T) {
	s := GetFloats(1000)
	if len(s) != 1000 {
		t.Fatalf("len=%d", len(s))
	}
	for i := range s {
		s[i] = 1
	}
	PutFloats(s)
	z := GetFloatsZeroed(900)
	if len(z) != 900 {
		t.Fatalf("len=%d", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetFloatsZeroed left dirty value at %d: %v", i, v)
		}
	}
	PutFloats(z)
	// Out-of-range sizes still work (plain allocation).
	tiny := GetFloats(1)
	if len(tiny) != 1 {
		t.Fatal("tiny buffer")
	}
	PutFloats(tiny)
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatal("MaxWorkers must be >= 1")
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(0); got != 1 {
		t.Fatalf("EffectiveWorkers(0) = %d, want 1", got)
	}
	if got := EffectiveWorkers(-3); got != 1 {
		t.Fatalf("EffectiveWorkers(-3) = %d, want 1", got)
	}
	if got := EffectiveWorkers(1); got != 1 {
		t.Fatalf("EffectiveWorkers(1) = %d, want 1", got)
	}
	m := MaxWorkers()
	if got := EffectiveWorkers(m + 100); got != m {
		t.Fatalf("EffectiveWorkers(%d) = %d, want GOMAXPROCS %d", m+100, got, m)
	}
	if m >= 2 {
		if got := EffectiveWorkers(2); got != 2 {
			t.Fatalf("EffectiveWorkers(2) = %d, want 2", got)
		}
	}
}
