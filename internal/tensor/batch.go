package tensor

import (
	"fmt"

	"vrdann/internal/par"
)

// Im2ColBatch lowers a batch of n CHW images, packed item-major into x
// ([n*C, H, W]), into one wide patch matrix of shape
// [C*kh*kw, n*outH*outW]: item i occupies the column block
// [i*outH*outW, (i+1)*outH*outW). Concatenating along columns is what lets
// one MatMul serve the whole batch — each output column is still computed
// by the exact serial per-item accumulation, so a batched convolution is
// bit-identical to n serial ones.
func Im2ColBatch(x *Tensor, n, kh, kw, stride, pad int) *Tensor {
	c, outH, outW := im2colBatchDims(x, n, kh, kw, stride, pad)
	cols := New(c*kh*kw, n*outH*outW)
	im2colBatchInto(cols, x, n, kh, kw, stride, pad)
	return cols
}

// Im2ColBatchInto is Im2ColBatch writing into a caller-owned buffer of
// shape [C*kh*kw, n*outH*outW], so the wide patch matrix can be reused
// across flushes.
func Im2ColBatchInto(cols, x *Tensor, n, kh, kw, stride, pad int) {
	c, outH, outW := im2colBatchDims(x, n, kh, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != n*outH*outW {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto dst shape %v, want [%d %d]", cols.Shape, c*kh*kw, n*outH*outW))
	}
	im2colBatchInto(cols, x, n, kh, kw, stride, pad)
}

func im2colBatchDims(x *Tensor, n, kh, kw, stride, pad int) (c, outH, outW int) {
	if len(x.Shape) != 3 || n <= 0 || x.Shape[0]%n != 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatch requires [n*C H W] input, got %v for n=%d", x.Shape, n))
	}
	c = x.Shape[0] / n
	outH = (x.Shape[1]+2*pad-kh)/stride + 1
	outW = (x.Shape[2]+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatch produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	return c, outH, outW
}

// im2colBatchInto fills the wide patch matrix. Rows — one per (channel, ky,
// kx) — stay independent exactly as in the single-item lowering, so they
// split across cores the same way.
func im2colBatchInto(cols, x *Tensor, n, kh, kw, stride, pad int) {
	c := x.Shape[0] / n
	rows := c * kh * kw
	outH := (x.Shape[1]+2*pad-kh)/stride + 1
	outW := (x.Shape[2]+2*pad-kw)/stride + 1
	grain := par.Grain(rows, n*outH*outW, par.MinWorkFloats)
	if grain >= rows || par.MaxWorkers() == 1 {
		im2colBatchRows(cols, x, n, kh, kw, stride, pad, 0, rows)
		return
	}
	par.For(rows, grain, func(lo, hi int) {
		im2colBatchRows(cols, x, n, kh, kw, stride, pad, lo, hi)
	})
}

// im2colBatchRows fills wide-patch-matrix rows [lo, hi): for each row it
// writes every item's patch values into that item's column block. The
// per-item inner loops are identical to im2colRows, only the source channel
// (item i's channel block) and destination column offset shift per item.
func im2colBatchRows(cols, x *Tensor, n, kh, kw, stride, pad, lo, hi int) {
	c := x.Shape[0] / n
	h, w := x.Shape[1], x.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	oHW := outH * outW
	for r := lo; r < hi; r++ {
		ch := r / (kh * kw)
		ky := (r / kw) % kh
		kx := r % kw
		row := r * n * oHW
		clear(cols.Data[row : row+n*oHW])
		for i := 0; i < n; i++ {
			chBase := (i*c + ch) * h * w
			itemCol := row + i*oHW
			for oy := 0; oy < outH; oy++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= h {
					continue
				}
				srcRow := chBase + iy*w
				dstRow := itemCol + oy*outW
				for ox := 0; ox < outW; ox++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= w {
						continue
					}
					cols.Data[dstRow+ox] = x.Data[srcRow+ix]
				}
			}
		}
	}
}
