package tensor

import (
	"math/rand"
	"testing"
)

// TestIm2ColBatchMatchesSerial pins the wide batched lowering to the
// per-item lowering bitwise: item i's column block of the batched patch
// matrix must equal Im2Col of item i alone, at several batch sizes and
// for both padded-same and strided-valid geometries.
func TestIm2ColBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name                   string
		c, h, w                int
		kh, kw, stride, pad, n int
	}{
		{"same-3x3-n1", 3, 8, 6, 3, 3, 1, 1, 1},
		{"same-3x3-n4", 3, 8, 6, 3, 3, 1, 1, 4},
		{"valid-2x2-s2-n3", 2, 10, 8, 2, 2, 2, 0, 3},
		{"same-3x3-n8", 1, 12, 12, 3, 3, 1, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch := New(tc.n*tc.c, tc.h, tc.w)
			for i := range batch.Data {
				batch.Data[i] = rng.Float32()*2 - 1
			}
			wide := Im2ColBatch(batch, tc.n, tc.kh, tc.kw, tc.stride, tc.pad)
			oHW := wide.Shape[1] / tc.n
			for i := 0; i < tc.n; i++ {
				item := FromSlice(batch.Data[i*tc.c*tc.h*tc.w:(i+1)*tc.c*tc.h*tc.w], tc.c, tc.h, tc.w)
				want := Im2Col(item, tc.kh, tc.kw, tc.stride, tc.pad)
				if want.Shape[1] != oHW {
					t.Fatalf("column count mismatch: wide block %d vs serial %d", oHW, want.Shape[1])
				}
				for r := 0; r < wide.Shape[0]; r++ {
					for col := 0; col < oHW; col++ {
						got := wide.Data[r*wide.Shape[1]+i*oHW+col]
						exp := want.Data[r*oHW+col]
						if got != exp {
							t.Fatalf("item %d row %d col %d: batched %v != serial %v", i, r, col, got, exp)
						}
					}
				}
			}
		})
	}
}

// TestIm2ColBatchIntoReuse checks the Into variant overwrites a dirty
// reused buffer completely (padding zeros included).
func TestIm2ColBatchIntoReuse(t *testing.T) {
	x := New(2*2, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i + 1)
	}
	want := Im2ColBatch(x, 2, 3, 3, 1, 1)
	dirty := New(want.Shape[0], want.Shape[1])
	for i := range dirty.Data {
		dirty.Data[i] = -99
	}
	Im2ColBatchInto(dirty, x, 2, 3, 3, 1, 1)
	for i := range want.Data {
		if dirty.Data[i] != want.Data[i] {
			t.Fatalf("element %d: reused buffer %v != fresh %v", i, dirty.Data[i], want.Data[i])
		}
	}
}

// TestIm2ColBatchValidation checks shape misuse panics instead of
// corrupting memory.
func TestIm2ColBatchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channel count not divisible by n")
		}
	}()
	Im2ColBatch(New(3, 4, 4), 2, 3, 3, 1, 1)
}
