package tensor

import (
	"math/rand"
	"testing"
)

// randI8 fills an int8 tensor with values in [-127, 127].
func randI8(rng *rand.Rand, shape ...int) *I8 {
	t := NewI8(shape...)
	for i := range t.Data {
		t.Data[i] = int8(rng.Intn(255) - 127)
	}
	return t
}

// asFloat converts an int8 tensor to float32 for differential reference.
func asFloat(t *I8) *Tensor {
	f := New(t.Shape...)
	for i, v := range t.Data {
		f.Data[i] = float32(v)
	}
	return f
}

// TestMatMulI8MatchesFloat checks the int8 GEMM against the float kernel
// on integer-valued operands, where float32 arithmetic is exact: every
// int32 accumulator must equal the float accumulation bit-for-bit.
func TestMatMulI8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 27, 96}, {16, 144, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randI8(rng, m, k), randI8(rng, k, n)
		got := MatMulI8(a, b)
		want := MatMul(asFloat(a), asFloat(b))
		for i := range got.Data {
			if float32(got.Data[i]) != want.Data[i] {
				t.Fatalf("[%d %d %d] element %d: int8 %d, float %g", m, k, n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulI8IntoReuses checks the Into form overwrites (not accumulates)
// and matches the allocating form.
func TestMatMulI8IntoReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randI8(rng, 4, 9), randI8(rng, 9, 13)
	dst := NewI32(4, 13)
	for i := range dst.Data {
		dst.Data[i] = -999 // stale garbage the kernel must overwrite
	}
	MatMulI8Into(dst, a, b)
	want := MatMulI8(a, b)
	for i := range dst.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("element %d: Into %d, alloc %d", i, dst.Data[i], want.Data[i])
		}
	}
}

// TestIm2ColI8MatchesFloat checks the int8 lowering against the float
// lowering on the same integer values, covering padding and stride.
func TestIm2ColI8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []struct{ ch, h, w, k, stride, pad int }{
		{1, 6, 6, 3, 1, 1},
		{3, 8, 10, 3, 1, 1},
		{4, 9, 9, 3, 2, 1},
		{2, 5, 7, 5, 1, 2},
	} {
		x := randI8(rng, c.ch, c.h, c.w)
		got := Im2ColI8(x, c.k, c.k, c.stride, c.pad)
		want := Im2Col(asFloat(x), c.k, c.k, c.stride, c.pad)
		if got.Shape[0] != want.Shape[0] || got.Shape[1] != want.Shape[1] {
			t.Fatalf("%+v: shape %v, want %v", c, got.Shape, want.Shape)
		}
		for i := range got.Data {
			if float32(got.Data[i]) != want.Data[i] {
				t.Fatalf("%+v: element %d: int8 %d, float %g", c, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestIm2ColBatchI8MatchesSerial checks that the wide batched lowering is
// the column-block concatenation of per-item lowerings.
func TestIm2ColBatchI8MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, ch, h, w, k = 3, 2, 6, 8, 3
	x := randI8(rng, n*ch, h, w)
	wide := Im2ColBatchI8(x, n, k, k, 1, 1)
	oHW := h * w
	for i := 0; i < n; i++ {
		item := I8FromSlice(x.Data[i*ch*h*w:(i+1)*ch*h*w], ch, h, w)
		single := Im2ColI8(item, k, k, 1, 1)
		for r := 0; r < single.Shape[0]; r++ {
			for col := 0; col < oHW; col++ {
				got := wide.Data[r*n*oHW+i*oHW+col]
				want := single.Data[r*oHW+col]
				if got != want {
					t.Fatalf("item %d row %d col %d: wide %d, serial %d", i, r, col, got, want)
				}
			}
		}
	}
}

// Benchmark shapes mirror the NN-S conv1 GEMM over a batch of 8 96×64
// sandwiches: [F, C*9] × [C*9, n*HW].
const (
	benchM = 8
	benchK = 27
	benchN = 8 * 96 * 64
)

func BenchmarkMatMulFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a8, b8 := randI8(rng, benchM, benchK), randI8(rng, benchK, benchN)
	a, bb := asFloat(a8), asFloat(b8)
	dst := New(benchM, benchN)
	b.SetBytes(int64(2 * benchM * benchK * benchN))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bb)
	}
}

func BenchmarkMatMulI8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a, bb := randI8(rng, benchM, benchK), randI8(rng, benchK, benchN)
	dst := NewI32(benchM, benchN)
	b.SetBytes(int64(2 * benchM * benchK * benchN))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulI8Into(dst, a, bb)
	}
}

func BenchmarkIm2ColBatchFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x8 := randI8(rng, 8*3, 96, 64)
	x := asFloat(x8)
	cols := New(27, 8*96*64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColBatchInto(cols, x, 8, 3, 3, 1, 1)
	}
}

func BenchmarkIm2ColBatchI8(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randI8(rng, 8*3, 96, 64)
	cols := NewI8(27, 8*96*64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColBatchI8Into(cols, x, 8, 3, 3, 1, 1)
	}
}
