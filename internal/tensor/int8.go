package tensor

import (
	"fmt"

	"vrdann/internal/par"
)

// Int8 tensor substrate: the data types and kernels of the quantized
// inference tier. The modeled NPU (Ascend 310) executes INT8 with INT32
// accumulation; these kernels run the same arithmetic in software —
// int8 operands, int32 accumulators, no float until requantization — so
// the measured kernel rates and the simulator's roofline describe the
// same datapath. The API mirrors the float kernels one-for-one
// (Im2ColI8/Im2ColBatchI8/MatMulI8 with Into reuse variants), including
// the row-blocked parallel split and the serial fast path, so callers
// port between the tiers mechanically.

// I8 is a dense, row-major int8 tensor (quantized activations/weights).
type I8 struct {
	Shape []int
	Data  []int8
}

// NewI8 allocates a zero-filled int8 tensor with the given shape.
func NewI8(shape ...int) *I8 {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &I8{Shape: s, Data: make([]int8, n)}
}

// I8FromSlice wraps data in an int8 tensor of the given shape. The slice
// is used directly (not copied); len(data) must equal the shape volume.
func I8FromSlice(data []int8, shape ...int) *I8 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &I8{Shape: s, Data: data}
}

// Numel returns the number of elements.
func (t *I8) Numel() int { return len(t.Data) }

// Reshape returns an int8 tensor sharing t's storage with a new shape.
func (t *I8) Reshape(shape ...int) *I8 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &I8{Shape: s, Data: t.Data}
}

// I32 is a dense, row-major int32 tensor (GEMM accumulators).
type I32 struct {
	Shape []int
	Data  []int32
}

// NewI32 allocates a zero-filled int32 tensor with the given shape.
func NewI32(shape ...int) *I32 {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &I32{Shape: s, Data: make([]int32, n)}
}

// Numel returns the number of elements.
func (t *I32) Numel() int { return len(t.Data) }

// MatMulI8 computes C = A×B for int8 tensors A (m×k) and B (k×n),
// accumulating in int32 — the INT8 MAC array of the modeled NPU. Row
// blocks split across cores exactly like the float MatMul; each output
// element keeps the serial accumulation order, and int32 addition is
// associative anyway, so results are identical at any worker count.
// Overflow note: the accumulator is exact up to k ≤ 2^31/127² ≈ 133k
// reduction length, far beyond any patch matrix in this repo.
func MatMulI8(a, b *I8) *I32 {
	m, n := matMulI8Dims(a, b)
	c := NewI32(m, n)
	matMulI8Into(c, a, b, false)
	return c
}

// MatMulI8Into computes dst = A×B, overwriting dst, which must already
// have shape [m, n]. It allocates nothing, so the quantized conv path can
// reuse one accumulator buffer across invocations.
func MatMulI8Into(dst *I32, a, b *I8) {
	m, n := matMulI8Dims(a, b)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulI8Into dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matMulI8Into(dst, a, b, true)
}

func matMulI8Dims(a, b *I8) (m, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulI8 requires 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulI8 inner dimension mismatch %v × %v", a.Shape, b.Shape))
	}
	return a.Shape[0], b.Shape[1]
}

func matMulI8Into(c *I32, a, b *I8, zero bool) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	grain := par.Grain(m, 2*k*n, par.MinWorkFloats)
	if grain >= m || par.MaxWorkers() == 1 {
		matMulI8Rows(c, a, b, 0, m, zero)
		return
	}
	par.For(m, grain, func(lo, hi int) { matMulI8Rows(c, a, b, lo, hi, zero) })
}

// matMulI8Rows computes rows [lo, hi) of c = a×b. The ikj loop order
// keeps the B row in cache, and zero A values — quantized weights round
// many small coefficients to exactly 0 — skip their whole row term, the
// same value sparsity the float kernel exploits.
func matMulI8Rows(c *I32, a, b *I8, lo, hi int, zero bool) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		if zero {
			clear(crow)
		}
		for kk := 0; kk < k; kk++ {
			av := int32(arow[kk])
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range crow {
				crow[j] += av * int32(brow[j])
			}
		}
	}
}

// Im2ColI8 lowers an int8 CHW image into a matrix of convolution patches,
// the int8 twin of Im2Col: input [C, H, W], output [C*kh*kw, outH*outW].
// Symmetric quantization makes the zero point 0, so zero padding needs no
// special handling — padded positions are simply 0, exactly as in float.
func Im2ColI8(x *I8, kh, kw, stride, pad int) *I8 {
	c, outH, outW := im2colI8Dims(x, kh, kw, stride, pad)
	cols := NewI8(c*kh*kw, outH*outW)
	im2colI8Into(cols, x, 1, kh, kw, stride, pad)
	return cols
}

// Im2ColI8Into is Im2ColI8 writing into a caller-owned buffer of shape
// [C*kh*kw, outH*outW], reusable across calls.
func Im2ColI8Into(cols, x *I8, kh, kw, stride, pad int) {
	c, outH, outW := im2colI8Dims(x, kh, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Im2ColI8Into dst shape %v, want [%d %d]", cols.Shape, c*kh*kw, outH*outW))
	}
	im2colI8Into(cols, x, 1, kh, kw, stride, pad)
}

func im2colI8Dims(x *I8, kh, kw, stride, pad int) (c, outH, outW int) {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2ColI8 requires CHW input, got %v", x.Shape))
	}
	c = x.Shape[0]
	outH = (x.Shape[1]+2*pad-kh)/stride + 1
	outW = (x.Shape[2]+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColI8 produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	return c, outH, outW
}

// Im2ColBatchI8 lowers a batch of n int8 CHW images, packed item-major
// into x ([n*C, H, W]), into one wide patch matrix [C*kh*kw, n*outH*outW]
// — the int8 twin of Im2ColBatch, feeding one fused MatMulI8 per layer.
func Im2ColBatchI8(x *I8, n, kh, kw, stride, pad int) *I8 {
	c, outH, outW := im2colBatchI8Dims(x, n, kh, kw, stride, pad)
	cols := NewI8(c*kh*kw, n*outH*outW)
	im2colI8Into(cols, x, n, kh, kw, stride, pad)
	return cols
}

// Im2ColBatchI8Into is Im2ColBatchI8 writing into a caller-owned buffer of
// shape [C*kh*kw, n*outH*outW], reusable across flushes.
func Im2ColBatchI8Into(cols, x *I8, n, kh, kw, stride, pad int) {
	c, outH, outW := im2colBatchI8Dims(x, n, kh, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != n*outH*outW {
		panic(fmt.Sprintf("tensor: Im2ColBatchI8Into dst shape %v, want [%d %d]", cols.Shape, c*kh*kw, n*outH*outW))
	}
	im2colI8Into(cols, x, n, kh, kw, stride, pad)
}

func im2colBatchI8Dims(x *I8, n, kh, kw, stride, pad int) (c, outH, outW int) {
	if len(x.Shape) != 3 || n <= 0 || x.Shape[0]%n != 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatchI8 requires [n*C H W] input, got %v for n=%d", x.Shape, n))
	}
	c = x.Shape[0] / n
	outH = (x.Shape[1]+2*pad-kh)/stride + 1
	outW = (x.Shape[2]+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatchI8 produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	return c, outH, outW
}

// im2colI8Into fills the (possibly wide) int8 patch matrix; n == 1 is the
// single-image lowering. Rows — one per (channel, ky, kx) — are
// independent and split across cores like the float lowering.
func im2colI8Into(cols, x *I8, n, kh, kw, stride, pad int) {
	c := x.Shape[0] / n
	rows := c * kh * kw
	outH := (x.Shape[1]+2*pad-kh)/stride + 1
	outW := (x.Shape[2]+2*pad-kw)/stride + 1
	grain := par.Grain(rows, n*outH*outW, par.MinWorkFloats)
	if grain >= rows || par.MaxWorkers() == 1 {
		im2colI8Rows(cols, x, n, kh, kw, stride, pad, 0, rows)
		return
	}
	par.For(rows, grain, func(lo, hi int) {
		im2colI8Rows(cols, x, n, kh, kw, stride, pad, lo, hi)
	})
}

// im2colI8Rows fills wide-patch-matrix rows [lo, hi): per row it writes
// every item's patch values into that item's column block, with the same
// zero-then-fill padding handling as the float kernels. At stride 1 the
// source index walks in lockstep with the destination, so the whole
// in-bounds span of each output row collapses to one copy — the dominant
// cost of the quantized forward pass is this lowering, and memmove beats
// the per-element loop (with its per-pixel bounds test) by a wide margin.
func im2colI8Rows(cols, x *I8, n, kh, kw, stride, pad, lo, hi int) {
	c := x.Shape[0] / n
	h, w := x.Shape[1], x.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	oHW := outH * outW
	for r := lo; r < hi; r++ {
		ch := r / (kh * kw)
		ky := (r / kw) % kh
		kx := r % kw
		row := r * n * oHW
		clear(cols.Data[row : row+n*oHW])
		// Valid ox span at stride 1: 0 <= ox+kx-pad < w.
		oxLo := 0
		if kx < pad {
			oxLo = pad - kx
		}
		oxHi := outW
		if m := w + pad - kx; oxHi > m {
			oxHi = m
		}
		for i := 0; i < n; i++ {
			chBase := (i*c + ch) * h * w
			itemCol := row + i*oHW
			for oy := 0; oy < outH; oy++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= h {
					continue
				}
				srcRow := chBase + iy*w
				dstRow := itemCol + oy*outW
				if stride == 1 {
					if oxLo < oxHi {
						copy(cols.Data[dstRow+oxLo:dstRow+oxHi], x.Data[srcRow+oxLo+kx-pad:srcRow+oxHi+kx-pad])
					}
					continue
				}
				for ox := 0; ox < outW; ox++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= w {
						continue
					}
					cols.Data[dstRow+ox] = x.Data[srcRow+ix]
				}
			}
		}
	}
}
