package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	x := New(2, 3, 4)
	if x.Numel() != 24 {
		t.Fatalf("Numel = %d, want 24", x.Numel())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("Dim mismatch: %v", x.Shape)
	}
}

func TestFull(t *testing.T) {
	x := Full(2.5, 3, 3)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatalf("Full element = %v, want 2.5", v)
		}
	}
}

func TestFromSliceRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	// Row-major offset check.
	if x.Data[2*20+1*5+3] != 7 {
		t.Fatal("Set did not write the row-major offset")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	_ = x.At(2, 0)
}

func TestReshapeInference(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Shape[0] != 2 || y.Shape[1] != 12 {
		t.Fatalf("Reshape shape = %v, want [2 12]", y.Shape)
	}
	y.Data[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeRejectsBadVolume(t *testing.T) {
	x := New(4, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIsDeep(t *testing.T) {
	x := Full(1, 2, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data[3]; got != 44 {
		t.Fatalf("Add = %v, want 44", got)
	}
	if got := Sub(b, a).Data[0]; got != 9 {
		t.Fatalf("Sub = %v, want 9", got)
	}
	if got := Mul(a, b).Data[2]; got != 90 {
		t.Fatalf("Mul = %v, want 90", got)
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 3}, 2)
	a.AxpyInPlace(0.5, b)
	if a.Data[0] != 2 || a.Data[1] != 2.5 {
		t.Fatalf("Axpy result %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 3, 2}, 4)
	if a.Sum() != 4 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 1 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 3 || a.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if math.Abs(a.L2Norm()-math.Sqrt(14)) > 1e-9 {
		t.Fatalf("L2Norm = %v", a.L2Norm())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 5, 7)
	b := Transpose(Transpose(a))
	if !AllClose(a, b, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

// Property: matmul distributes over addition, (A+B)C = AC + BC.
func TestMatMulDistributesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, m, k)
		c := Randn(r, 1, k, n)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		return AllClose(left, right, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose reverses multiplication order, (AB)^T = B^T A^T.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return AllClose(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: columns are just the flattened image.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Shape[0] != 1 || cols.Shape[1] != 4 {
		t.Fatalf("cols shape %v", cols.Shape)
	}
	for i := range x.Data {
		if cols.Data[i] != x.Data[i] {
			t.Fatalf("cols[%d] = %v", i, cols.Data[i])
		}
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 3x3 image, 2x2 kernel, stride 1, no pad -> 4 patches.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols := Im2Col(x, 2, 2, 1, 0)
	// Patch at (0,0) is column 0: [1 2 4 5].
	want := []float32{1, 2, 4, 5}
	for r, w := range want {
		if got := cols.At(r, 0); got != w {
			t.Fatalf("patch row %d = %v, want %v", r, got, w)
		}
	}
	// Patch at (1,1) is column 3: [5 6 8 9].
	want = []float32{5, 6, 8, 9}
	for r, w := range want {
		if got := cols.At(r, 3); got != w {
			t.Fatalf("patch(1,1) row %d = %v, want %v", r, got, w)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1)
	if cols.Shape[1] != 4 {
		t.Fatalf("expected 4 output positions, got %d", cols.Shape[1])
	}
	// Center tap of the (0,0) output patch is x[0,0]=1; top-left tap is pad 0.
	if cols.At(4, 0) != 1 {
		t.Fatalf("center tap = %v, want 1", cols.At(4, 0))
	}
	if cols.At(0, 0) != 0 {
		t.Fatalf("padded tap = %v, want 0", cols.At(0, 0))
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestIm2ColAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, h, w := 1+r.Intn(3), 3+r.Intn(5), 3+r.Intn(5)
		k := 1 + r.Intn(3)
		pad := r.Intn(2)
		stride := 1 + r.Intn(2)
		if (h+2*pad-k) < 0 || (w+2*pad-k) < 0 {
			return true
		}
		x := Randn(r, 1, c, h, w)
		cols := Im2Col(x, k, k, stride, pad)
		y := Randn(r, 1, cols.Shape...)
		back := Col2Im(y, c, h, w, k, k, stride, pad)
		var lhs, rhs float64
		for i := range cols.Data {
			lhs += float64(cols.Data[i]) * float64(y.Data[i])
		}
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(back.Data[i])
		}
		return math.Abs(lhs-rhs) <= 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float32{-1, 2}, 2)
	y := Apply(x, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if y.Data[0] != 0 || y.Data[1] != 2 {
		t.Fatalf("Apply relu = %v", y.Data)
	}
	if x.Data[0] != -1 {
		t.Fatal("Apply must not mutate its input")
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(8, 3, 1, 1) != 8 {
		t.Fatal("same-padding size mismatch")
	}
	if ConvOutSize(8, 2, 2, 0) != 4 {
		t.Fatal("stride-2 size mismatch")
	}
}
