package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// naiveMatMul is the straightforward triple loop used as the reference for
// the blocked/parallel kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func TestMatMulMatchesNaiveAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 27, 96 * 64}, {33, 17, 129}} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		want := naiveMatMul(a, b)
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got := MatMul(a, b)
			runtime.GOMAXPROCS(prev)
			if !got.SameShape(want) {
				t.Fatalf("dims %v procs %d: shape %v", dims, procs, got.Shape)
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("dims %v procs %d: element %d differs: %v vs %v",
						dims, procs, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 6, 10)
	b := Randn(rng, 1, 10, 8)
	want := MatMul(a, b)
	dst := Full(42, 6, 8) // dirty buffer: MatMulInto must overwrite it
	MatMulInto(dst, a, b)
	if !AllClose(dst, want, 0) {
		t.Fatal("MatMulInto result differs from MatMul")
	}
	allocs := testing.AllocsPerRun(10, func() { MatMulInto(dst, a, b) })
	if allocs != 0 {
		t.Fatalf("MatMulInto allocates %.0f objects per call, want 0", allocs)
	}
}

func TestMatMulBTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {4, 9, 5}, {16, 72, 24 * 16}} {
		m, p, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, p)
		b := Randn(rng, 1, n, p)
		want := naiveMatMul(a, Transpose(b))
		got := MatMulBT(a, b)
		if !got.SameShape(want) {
			t.Fatalf("dims %v: shape %v", dims, got.Shape)
		}
		if !AllClose(got, want, 1e-4) {
			t.Fatalf("dims %v: MatMulBT differs from MatMul(a, bᵀ)", dims)
		}
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 3, 13, 17)
	for _, cfg := range [][4]int{{3, 3, 1, 1}, {3, 3, 2, 1}, {5, 3, 1, 2}, {1, 1, 1, 0}} {
		kh, kw, stride, pad := cfg[0], cfg[1], cfg[2], cfg[3]
		want := Im2Col(x, kh, kw, stride, pad)
		dst := Full(7, want.Shape...) // dirty buffer must be fully overwritten
		Im2ColInto(dst, x, kh, kw, stride, pad)
		if !AllClose(dst, want, 0) {
			t.Fatalf("cfg %v: Im2ColInto differs from Im2Col", cfg)
		}
	}
}

func TestIm2ColParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 1, 8, 64, 96)
	prev := runtime.GOMAXPROCS(1)
	want := Im2Col(x, 3, 3, 1, 1)
	runtime.GOMAXPROCS(4)
	got := Im2Col(x, 3, 3, 1, 1)
	runtime.GOMAXPROCS(prev)
	if !AllClose(got, want, 0) {
		t.Fatal("parallel Im2Col differs from serial")
	}
}

func TestCol2ImRoundTripAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cols := Randn(rng, 1, 8*3*3, 64*96)
	prev := runtime.GOMAXPROCS(1)
	want := Col2Im(cols, 8, 64, 96, 3, 3, 1, 1)
	runtime.GOMAXPROCS(4)
	got := Col2Im(cols, 8, 64, 96, 3, 3, 1, 1)
	runtime.GOMAXPROCS(prev)
	if !AllClose(got, want, 0) {
		t.Fatal("parallel Col2Im differs from serial")
	}
}
