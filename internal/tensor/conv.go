package tensor

import (
	"fmt"

	"vrdann/internal/par"
)

// Im2Col lowers a CHW image tensor into a matrix of convolution patches.
//
// Input x has shape [C, H, W]. The result has shape
// [C*kh*kw, outH*outW] where outH and outW are the spatial output sizes of
// a convolution with the given kernel, stride and (symmetric zero) padding.
// Each column is one receptive field flattened channel-major.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	c, outH, outW := im2colDims(x, kh, kw, stride, pad)
	cols := New(c*kh*kw, outH*outW)
	im2colInto(cols, x, kh, kw, stride, pad, false)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-owned buffer of shape
// [C*kh*kw, outH*outW], so the patch matrix can be reused across calls
// (the per-inference allocation in the conv path is exactly this matrix).
func Im2ColInto(cols *Tensor, x *Tensor, kh, kw, stride, pad int) {
	c, outH, outW := im2colDims(x, kh, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", cols.Shape, c*kh*kw, outH*outW))
	}
	im2colInto(cols, x, kh, kw, stride, pad, true)
}

func im2colDims(x *Tensor, kh, kw, stride, pad int) (c, outH, outW int) {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires CHW input, got %v", x.Shape))
	}
	c = x.Shape[0]
	outH = (x.Shape[1]+2*pad-kh)/stride + 1
	outW = (x.Shape[2]+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	return c, outH, outW
}

// im2colInto fills cols; rows of the patch matrix — one per (channel, ky,
// kx) — are independent, so they are processed in parallel blocks. The
// serial path is split out so the steady-state reuse form allocates nothing
// (the parallel closure escapes to the heap).
func im2colInto(cols, x *Tensor, kh, kw, stride, pad int, zero bool) {
	rows := x.Shape[0] * kh * kw
	outH := (x.Shape[1]+2*pad-kh)/stride + 1
	outW := (x.Shape[2]+2*pad-kw)/stride + 1
	grain := par.Grain(rows, outH*outW, par.MinWorkFloats)
	if grain >= rows || par.MaxWorkers() == 1 {
		im2colRows(cols, x, kh, kw, stride, pad, 0, rows, zero)
		return
	}
	par.For(rows, grain, func(lo, hi int) {
		im2colRows(cols, x, kh, kw, stride, pad, lo, hi, zero)
	})
}

// im2colRows fills patch-matrix rows [lo, hi).
func im2colRows(cols, x *Tensor, kh, kw, stride, pad, lo, hi int, zero bool) {
	h, w := x.Shape[1], x.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	for r := lo; r < hi; r++ {
		ch := r / (kh * kw)
		ky := (r / kw) % kh
		kx := r % kw
		chBase := ch * h * w
		row := r * outH * outW
		if zero {
			clear(cols.Data[row : row+outH*outW])
		}
		for oy := 0; oy < outH; oy++ {
			iy := oy*stride + ky - pad
			if iy < 0 || iy >= h {
				continue
			}
			srcRow := chBase + iy*w
			dstRow := row + oy*outW
			for ox := 0; ox < outW; ox++ {
				ix := ox*stride + kx - pad
				if ix < 0 || ix >= w {
					continue
				}
				cols.Data[dstRow+ox] = x.Data[srcRow+ix]
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) the patch
// matrix back into a CHW image of shape [c, h, w]. Channels accumulate
// independently, so they are processed in parallel.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	img := New(c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, pad)
	return img
}

// Col2ImInto is Col2Im accumulating into a caller-owned, zeroed image
// tensor of shape [c, h, w].
func Col2ImInto(img, cols *Tensor, kh, kw, stride, pad int) {
	if len(img.Shape) != 3 {
		panic(fmt.Sprintf("tensor: Col2ImInto requires CHW dst, got %v", img.Shape))
	}
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch: cols %v, want [%d %d]", cols.Shape, c*kh*kw, outH*outW))
	}
	par.For(c, par.Grain(c, kh*kw*outH*outW, par.MinWorkFloats), func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			chBase := ch * h * w
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := ((ch*kh+ky)*kw + kx) * outH * outW
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						srcRow := row + oy*outW
						dstRow := chBase + iy*w
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							img.Data[dstRow+ix] += cols.Data[srcRow+ox]
						}
					}
				}
			}
		}
	})
}

// ConvOutSize returns the spatial output size of a convolution along one
// dimension.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
