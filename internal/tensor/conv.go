package tensor

import "fmt"

// Im2Col lowers a CHW image tensor into a matrix of convolution patches.
//
// Input x has shape [C, H, W]. The result has shape
// [C*kh*kw, outH*outW] where outH and outW are the spatial output sizes of
// a convolution with the given kernel, stride and (symmetric zero) padding.
// Each column is one receptive field flattened channel-major.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires CHW input, got %v", x.Shape))
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	cols := New(c*kh*kw, outH*outW)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := chBase + iy*w
					dstRow := row + oy*outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						cols.Data[dstRow+ox] = x.Data[srcRow+ix]
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) the patch
// matrix back into a CHW image of shape [c, h, w].
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch: cols %v, want [%d %d]", cols.Shape, c*kh*kw, outH*outW))
	}
	img := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := row + oy*outW
					dstRow := chBase + iy*w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						img.Data[dstRow+ix] += cols.Data[srcRow+ox]
					}
				}
			}
		}
	}
	return img
}

// ConvOutSize returns the spatial output size of a convolution along one
// dimension.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
