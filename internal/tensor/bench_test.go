package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// withProcs runs the benchmark body under a fixed GOMAXPROCS so the serial
// and parallel variants of each kernel can be compared on one machine
// (par.For sizes itself from GOMAXPROCS).
func withProcs(b *testing.B, procs int, fn func(b *testing.B)) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn(b)
}

func serialParallel(b *testing.B, fn func(b *testing.B)) {
	b.Run("serial", func(b *testing.B) { withProcs(b, 1, fn) })
	b.Run("parallel", func(b *testing.B) { withProcs(b, runtime.NumCPU(), fn) })
}

// NN-S conv1 as a GEMM: [8 × 27] × [27 × 6144] for a 64×96 frame.
func BenchmarkMatMulNNS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 8, 27)
	x := Randn(rng, 1, 27, 64*96)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMul(a, x)
		}
	})
}

// NN-L mid-layer as a GEMM: [32 × 144] × [144 × 1536] for a pooled frame.
func BenchmarkMatMulNNL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 32, 144)
	x := Randn(rng, 1, 144, 32*48)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMul(a, x)
		}
	})
}

// Steady-state form: output buffer reused, zero allocations per call.
func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 32, 144)
	x := Randn(rng, 1, 144, 32*48)
	dst := New(32, 32*48)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulInto(dst, a, x)
		}
	})
}

func BenchmarkMatMulBT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := Randn(rng, 1, 8, 64*96)
	cols := Randn(rng, 1, 27, 64*96)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulBT(g, cols)
		}
	})
}

// Lowering a 3-channel 64×96 sandwich input with a 3×3 kernel.
func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 3, 64, 96)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Im2Col(x, 3, 3, 1, 1)
		}
	})
}

func BenchmarkIm2ColInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 3, 64, 96)
	cols := New(3*3*3, 64*96)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Im2ColInto(cols, x, 3, 3, 1, 1)
		}
	})
}

func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := Randn(rng, 1, 8*3*3, 64*96)
	serialParallel(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Col2Im(cols, 8, 64, 96, 3, 3, 1, 1)
		}
	})
}
