// Package tensor provides dense float32 tensors and the linear-algebra
// primitives needed by the neural-network substrate. It is deliberately
// small: shapes are explicit int slices, storage is a flat []float32 in
// row-major order, and all operations are implemented with plain loops so
// the package depends only on the standard library and the internal/par
// parallelism substrate. The heavy kernels (MatMul, Im2Col, Col2Im) split
// across cores via par.For; each output element is still produced by one
// goroutine with the serial accumulation order, so results are
// bit-identical at any worker count.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"vrdann/internal/par"
)

// Tensor is a dense, row-major float32 tensor.
//
// The zero value is not usable; construct tensors with New, Zeros, Full,
// FromSlice or Randn.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float32, n)}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full allocates a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Randn fills a new tensor with N(0, std²) samples drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape. One
// dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	infer := -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for shape %v from %d elements", shape, len(t.Data)))
		}
		s[infer] = len(t.Data) / n
		n *= s[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddInPlace adds o element-wise into t. Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// AxpyInPlace computes t += a*o element-wise.
func (t *Tensor) AxpyInPlace(a float32, o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AxpyInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	c := t.Clone()
	c.AddInPlace(o)
	return c
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	c := New(t.Shape...)
	for i := range c.Data {
		c.Data[i] = t.Data[i] - o.Data[i]
	}
	return c
}

// Mul returns the element-wise (Hadamard) product.
func Mul(t, o *Tensor) *Tensor {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	c := New(t.Shape...)
	for i := range c.Data {
		c.Data[i] = t.Data[i] * o.Data[i]
	}
	return c
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MatMul computes C = A×B for 2-D tensors A (m×k) and B (k×n). Row blocks
// of C are computed in parallel when the product is large enough to pay
// for the fan-out (see internal/par).
func MatMul(a, b *Tensor) *Tensor {
	m, n := matMulDims(a, b)
	c := New(m, n)
	matMulInto(c, a, b, false)
	return c
}

// MatMulInto computes dst = A×B, overwriting dst, which must already have
// shape [m, n]. It allocates nothing, so callers can reuse an output
// buffer across invocations.
func MatMulInto(dst, a, b *Tensor) {
	m, n := matMulDims(a, b)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matMulInto(dst, a, b, true)
}

func matMulDims(a, b *Tensor) (m, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape, b.Shape))
	}
	return a.Shape[0], b.Shape[1]
}

func matMulInto(c, a, b *Tensor, zero bool) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	grain := par.Grain(m, 2*k*n, par.MinWorkFloats)
	if grain >= m || par.MaxWorkers() == 1 {
		// Serial fast path: skip the fork-join machinery (and its closure
		// allocation) when the product would not split anyway.
		matMulRows(c, a, b, 0, m, zero)
		return
	}
	par.For(m, grain, func(lo, hi int) { matMulRows(c, a, b, lo, hi, zero) })
}

// matMulRows computes rows [lo, hi) of c = a×b.
func matMulRows(c, a, b *Tensor, lo, hi int, zero bool) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		if zero {
			clear(crow)
		}
		// ikj loop order keeps the B row in cache.
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulBT computes C = A×Bᵀ for A (m×p) and B (n×p): C[i,j] is the dot
// product of row i of A and row j of B. Both operands stream row-major, so
// this is the allocation-free replacement for MatMul(a, Transpose(b)).
func MatMulBT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulBT requires 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	m, p := a.Shape[0], a.Shape[1]
	n, p2 := b.Shape[0], b.Shape[1]
	if p != p2 {
		panic(fmt.Sprintf("tensor: MatMulBT inner dimension mismatch %v × %vᵀ", a.Shape, b.Shape))
	}
	c := New(m, n)
	par.For(m, par.Grain(m, 2*p*n, par.MinWorkFloats), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*p : (i+1)*p]
			crow := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*p : (j+1)*p]
				var s float32
				for kk, av := range arow {
					s += av * brow[kk]
				}
				crow[j] = s
			}
		}
	})
	return c
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires a 2-D operand, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float32) float32) *Tensor {
	c := New(t.Shape...)
	for i, v := range t.Data {
		c.Data[i] = f(v)
	}
	return c
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// AllClose reports whether every pair of elements differs by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i])-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}
