package core

import (
	"context"

	"vrdann/internal/codec"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// StreamEngine drives the serial streaming pipeline one frame at a time
// against an externally owned StreamDecoder. It is the unit of scheduling
// of the multi-stream serving layer: a scheduler can interleave Step calls
// from many engines on a shared worker budget, while each engine keeps the
// exact state of the serial decode-order loop — the pruned reference
// window, the refiner, the working-set maximum. RunInstrumented is itself
// implemented on an engine, so a frame served through a scheduler is
// bit-identical to the same frame in a single-stream run by construction.
//
// An engine is not safe for concurrent use; callers must serialize Step.
type StreamEngine struct {
	p       *StreamingPipeline
	dec     *codec.StreamDecoder
	types   []codec.FrameType
	cfg     codec.Config
	w, h    int
	lastUse map[int]int
	segs    map[int]*video.Mask
	refiner *segment.Refiner
	pos     int
	maxSegs int
}

// NewEngine prepares frame-by-frame execution of the pipeline over the
// given decoder (which must be freshly opened or Reset). The pipeline's
// observer is attached to the decoder for per-frame decode timings.
func (p *StreamingPipeline) NewEngine(dec *codec.StreamDecoder) *StreamEngine {
	dec.SetObserver(p.Obs)
	types := dec.Types()
	w, h := dec.Geometry()
	return &StreamEngine{
		p: p, dec: dec, types: types, cfg: dec.Config(), w: w, h: h,
		lastUse: segLastUse(types, dec.Config()),
		segs:    make(map[int]*video.Mask),
		refiner: p.pipeline().refiner(false),
		pos:     -1,
	}
}

// MaxSegs reports the largest reference working set held so far.
func (e *StreamEngine) MaxSegs() int { return e.maxSegs }

// Remaining reports how many frames the engine has not yet delivered.
func (e *StreamEngine) Remaining() int { return e.dec.Remaining() }

// Step decodes and processes the next frame in decode order. It returns
// (nil, nil) when the stream is exhausted and ctx.Err() if the context is
// cancelled before the frame is decoded; frames already returned are
// unaffected by a later cancellation.
func (e *StreamEngine) Step(ctx context.Context) (*MaskOut, error) {
	return e.StepFunc(ctx, nil)
}

// StepFunc is Step with a QoS ladder hook: when sel is non-nil it is
// consulted for every B-frame and its rung is honored — qos.StepSkip
// yields a MaskOut with a nil Mask (the bitstream is still consumed;
// B-frame side info must be read to advance the entropy coder),
// qos.StepRecon stops at the raw MV reconstruction, and qos.StepFull
// re-segments the frame with NN-L when its pixels are available. Anchors
// are never degraded — their segmentations are the references every later
// frame depends on. This is the degradation policy of the serving layer:
// under overload, B-frames slide down the ladder while the anchor chain
// stays intact.
func (e *StreamEngine) StepFunc(ctx context.Context, sel StepSelector) (*MaskOut, error) {
	mo, pending, err := e.StepPrepare(ctx, sel)
	if err != nil || pending == nil {
		return mo, err
	}
	return pending.Finish(pending.ExecuteLocal()), nil
}
