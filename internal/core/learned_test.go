package core

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// TestFullyLearnedPipeline trains BOTH networks from scratch (no oracle
// anywhere) and runs the complete VR-DANN flow: learned NN-L on anchors,
// MV reconstruction + learned NN-S on B-frames.
func TestFullyLearnedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two networks")
	}
	train := video.MakeTrainingSet(64, 48, 16)
	nnl, err := TrainNNL(train, NNLTrainConfig{Width: 8, Steps: 200, LR: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nns, err := TrainNNS(train, codec.DefaultConfig(), TrainConfig{Features: 8, Epochs: 2, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on an easy held-out sequence.
	v := video.MakeSequence(video.SuiteProfiles[6], 64, 48, 16) // cows
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: &segment.NetSegmenter{Label: "fcn", Net: nnl}, NNS: nns, Refine: true}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	var s segment.SeqScore
	for d := range res.Masks {
		s.Add(res.Masks[d], v.Masks[d])
	}
	f, j := s.Mean()
	t.Logf("fully learned pipeline: F=%.3f J=%.3f", f, j)
	// A from-scratch CNN trained for seconds won't match the oracle, but it
	// must clearly beat chance and produce a usable segmentation.
	if j < 0.5 {
		t.Fatalf("fully learned pipeline IoU %.3f too low", j)
	}
}

func TestTrainNNLRejectsEmpty(t *testing.T) {
	if _, err := TrainNNL(nil, DefaultNNLTrainConfig()); err == nil {
		t.Fatal("expected error")
	}
}
