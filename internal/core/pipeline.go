// Package core implements the VR-DANN algorithm (Sec III): decode the
// bitstream for I/P pixels and B-frame motion vectors, segment I/P-frames
// with the large network NN-L, reconstruct each B-frame's segmentation from
// its motion vectors and the reference-frame results, and refine the
// reconstruction with the lightweight NN-S on a sandwich three-channel
// input. The same machinery extends to detection by treating the detector
// box as a rectangular mask (Sec III-B).
package core

import (
	"context"
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// Pipeline bundles the two networks of the VR-DANN scheme.
type Pipeline struct {
	// NNL is the large segmentation network applied to I/P-frames (the paper
	// borrows FAVOS's ROI SegNet parameters).
	NNL segment.Segmenter
	// NNS is the lightweight refinement network for B-frames.
	NNS *nn.RefineNet
	// Quant, when non-nil, routes B-frame refinement through the int8
	// execution tier instead of the float NNS. Accuracy is gated on F-score
	// delta against the float path, not bit identity.
	Quant *nn.QuantRefineNet
	// Refine toggles NN-S refinement; disabling it yields the raw
	// motion-vector reconstruction (ablation of Sec III-A-2).
	Refine bool
	// SkipResidual enables residual-driven sparsity: B-frame blocks whose
	// decoded residual energy is at or below SkipThreshold keep their
	// MV-reconstructed mask, and NN-S runs only over the dirty rectangle.
	// A frame with no dirty blocks skips NN-S entirely.
	SkipResidual bool
	// SkipThreshold is the per-block residual-energy cutoff of SkipResidual;
	// 0 (the default) skips only blocks whose motion-compensated prediction
	// was bit-exact at the coding QP.
	SkipThreshold int
	// Workers selects the execution mode: <= 1 runs the classic serial
	// decode-order loop; > 1 runs the overlapped pipeline of Sec IV's agent
	// unit in software — NN-L anchor inference proceeds as its own stage
	// while B-frame reconstruction + refinement run on Workers goroutines
	// as soon as their anchor dependencies resolve. Output is bit-identical
	// either way (see WithWorkers).
	Workers int
	// Obs, when non-nil, collects per-stage latency, queue-depth gauges and
	// span traces for the run. Nil (the default) costs one pointer check
	// per instrumentation site and nothing else.
	Obs *obs.Collector
}

// Option configures a Pipeline built with New.
type Option func(*Pipeline)

// WithWorkers sets the worker count of the overlapped execution mode.
// n <= 1 keeps the serial decode-order loop; larger n overlaps B-frame
// reconstruction and NN-S refinement with NN-L anchor inference on n
// goroutines. Masks, detections, reconstructions and Stats are
// bit-identical for every n, so benchmarks can sweep 1..NumCPU freely.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.Workers = n }
}

// WithObserver attaches a metrics collector to the pipeline.
func WithObserver(c *obs.Collector) Option {
	return func(p *Pipeline) { p.Obs = c }
}

// New builds a pipeline with refinement enabled whenever a refinement
// network is supplied, then applies the options.
func New(nnl segment.Segmenter, nns *nn.RefineNet, opts ...Option) *Pipeline {
	p := &Pipeline{NNL: nnl, NNS: nns, Refine: nns != nil}
	for _, o := range opts {
		o(p)
	}
	return p
}

// workers resolves the effective worker count (>= 1).
func (p *Pipeline) workers() int {
	if p.Workers < 1 {
		return 1
	}
	return p.Workers
}

// Stats counts the work the pipeline performed.
type Stats struct {
	IFrames, PFrames, BFrames int
	NNLRuns, NNSRuns          int
	MVCount                   int
	BiRefMVs                  int
	IntraFallbackBlocks       int
}

// Result is the output of a segmentation run.
type Result struct {
	Masks  []*video.Mask              // display order, one per frame
	Recons map[int]*segment.ReconMask // raw B-frame reconstructions
	Decode *codec.DecodeResult
	Stats  Stats
}

// RunSegmentation executes the full Fig 5 flow on an encoded bitstream.
//
// On success the returned Result is complete. On error the Result is still
// returned (not nil): its Stats hold exactly the counters the serial
// decode-order loop accumulates up to and including the failing frame —
// identical for every worker count — while its masks are partial and
// unspecified. Callers that only check err keep their existing behaviour.
func (p *Pipeline) RunSegmentation(stream []byte) (*Result, error) {
	return p.RunSegmentationContext(context.Background(), stream)
}

// RunSegmentationContext is RunSegmentation with cancellation: the context
// is checked before every frame (serial) or decode step (parallel); a
// cancelled run returns ctx.Err() after all its goroutines have drained.
// The partial Result's masks and Stats are unspecified on cancellation.
func (p *Pipeline) RunSegmentationContext(ctx context.Context, stream []byte) (*Result, error) {
	dec, err := codec.DecodeObserved(stream, codec.DecodeSideInfo, p.Obs)
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	return p.runDecoded(ctx, dec)
}

// refiner builds the NN-S wrapper for one goroutine. The network is cloned
// whenever it cannot be used in place: always in the parallel paths (layers
// cache activations), and in serial paths when an observer must be attached
// without mutating the caller's network.
func (p *Pipeline) refiner(clone bool) *segment.Refiner {
	if !p.Refine {
		return nil
	}
	if p.Quant != nil {
		q := p.Quant
		if clone || p.Obs != nil {
			q = q.Clone()
			if p.Obs != nil {
				q.SetObserver(p.Obs)
			}
		}
		return segment.NewQuantRefiner(q)
	}
	if p.NNS == nil {
		return nil
	}
	net := p.NNS
	if clone || p.Obs != nil {
		net = net.Clone()
		if p.Obs != nil {
			net.SetObserver(p.Obs)
		}
	}
	return segment.NewRefiner(net)
}

// refineB computes one B-frame's refined mask, applying the residual skip
// when enabled: clean frames reuse the MV reconstruction without touching
// NN-S, partially dirty frames refine only the dirty rectangle (cropped
// sandwich, pasted back over the reconstruction). The bool reports whether
// NN-S actually ran. Used identically by the serial and parallel loops, so
// their outputs stay bit-identical.
func (p *Pipeline) refineB(r *segment.Refiner, info codec.FrameInfo, rec *segment.ReconMask, prev, next *video.Mask, w, h, blockSize int) (*video.Mask, bool) {
	if !p.SkipResidual {
		return r.Refine(prev, rec, next), true
	}
	rect, dirty, total, known := segment.ResidualDirtyRect(info.BlockEnergy, w, h, blockSize, p.SkipThreshold, segment.ResidualHalo)
	if !known {
		// No usable energy field (pre-field bitstream): the blocks were never
		// judged, so they count as unknown, not dirty.
		p.Obs.Count(obs.CounterQuantBlocksUnknown, int64(total))
	} else {
		p.Obs.Count(obs.CounterQuantBlocksSkipped, int64(total-dirty))
		p.Obs.Count(obs.CounterQuantBlocksDirty, int64(dirty))
	}
	if rect.Empty() {
		return rec.Binary(), false
	}
	if rect.Full(w, h) {
		return r.Refine(prev, rec, next), true
	}
	base := rec.Binary()
	sub := r.Refine(segment.CropMask(prev, rect), rec.Crop(rect), segment.CropMask(next, rect))
	segment.PasteMask(base, sub, rect.X0, rect.Y0)
	return base, true
}

func (p *Pipeline) runDecoded(ctx context.Context, dec *codec.DecodeResult) (*Result, error) {
	if p.workers() > 1 {
		return p.runDecodedParallel(ctx, dec)
	}
	res := &Result{
		Masks:  make([]*video.Mask, len(dec.Types)),
		Recons: make(map[int]*segment.ReconMask),
		Decode: dec,
	}
	refiner := p.refiner(false)
	segs := make(map[int]*video.Mask) // anchor segmentations by display index
	for _, d := range dec.Order {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		info := dec.Infos[d]
		switch info.Type {
		case codec.IFrame, codec.PFrame:
			t0 := p.Obs.Clock()
			m := p.NNL.Segment(dec.Frames[d], d)
			p.Obs.Span(obs.StageNNL, d, byte(info.Type), t0)
			segs[d] = m
			res.Masks[d] = m
			res.Stats.NNLRuns++
			if info.Type == codec.IFrame {
				res.Stats.IFrames++
			} else {
				res.Stats.PFrames++
			}
		case codec.BFrame:
			res.Stats.BFrames++
			t0 := p.Obs.Clock()
			rec, err := segment.Reconstruct(info, segs, dec.W, dec.H, dec.Cfg.BlockSize)
			p.Obs.Span(obs.StageReconstruct, d, byte(info.Type), t0)
			if err != nil {
				return res, fmt.Errorf("core: frame %d: %w", d, err)
			}
			res.Recons[d] = rec
			res.Stats.MVCount += len(info.MVs)
			for _, mv := range info.MVs {
				if mv.BiRef {
					res.Stats.BiRefMVs++
				}
			}
			res.Stats.IntraFallbackBlocks += info.Blocks - len(info.MVs)
			if refiner != nil {
				prev, next := flankingAnchors(dec.Types, segs, d)
				t1 := p.Obs.Clock()
				m, ran := p.refineB(refiner, info, rec, prev, next, dec.W, dec.H, dec.Cfg.BlockSize)
				res.Masks[d] = m
				p.Obs.Span(obs.StageRefine, d, byte(info.Type), t1)
				if ran {
					res.Stats.NNSRuns++
				}
			} else {
				res.Masks[d] = rec.Binary()
			}
		}
		p.Obs.GaugeSet(obs.GaugeRefWindow, int64(len(segs)))
	}
	return res, nil
}

// FlankingAnchors returns the segmentations of the immediately preceding
// and following anchor frames available in segs — the sandwich channels of
// Sec III-A-2. Exposed for callers that re-run refinement on cached
// reconstructions (e.g. the INT8 deployment study).
func FlankingAnchors(types []codec.FrameType, segs map[int]*video.Mask, d int) (prev, next *video.Mask) {
	return flankingAnchors(types, segs, d)
}

// flankingAnchors returns the segmentations of the immediately preceding
// and following anchor frames (Sec III-A-2: "the temporally closest
// frames"). At sequence edges the available side is duplicated.
func flankingAnchors(types []codec.FrameType, segs map[int]*video.Mask, d int) (prev, next *video.Mask) {
	for i := d - 1; i >= 0; i-- {
		if types[i].IsAnchor() {
			if m, ok := segs[i]; ok {
				prev = m
				break
			}
		}
	}
	for i := d + 1; i < len(types); i++ {
		if types[i].IsAnchor() {
			if m, ok := segs[i]; ok {
				next = m
				break
			}
		}
	}
	if prev == nil {
		prev = next
	}
	if next == nil {
		next = prev
	}
	return prev, next
}

// BoxDetector produces scored detections for one decoded frame; it plays
// the role NN-L plays for segmentation when VR-DANN is applied to video
// detection.
type BoxDetector interface {
	Detect(f *video.Frame, display int) []detect.Detection
	Name() string
}

// DetectionResult is the output of a detection run.
type DetectionResult struct {
	Detections [][]detect.Detection // display order
	Decode     *codec.DecodeResult
	Stats      Stats
}

// RunDetection applies the VR-DANN scheme to video detection: the detector
// runs on I/P-frames; each detected box becomes a rectangular mask whose
// B-frame propagation reuses the segmentation reconstruction, and the
// propagated mask's bounding box is the B-frame detection (Sec III-B).
//
// Error-path Stats follow the RunSegmentation contract: on failure the
// returned result carries the serial decode-order prefix counters,
// identical for every worker count.
func (p *Pipeline) RunDetection(stream []byte, det BoxDetector) (*DetectionResult, error) {
	return p.RunDetectionContext(context.Background(), stream, det)
}

// RunDetectionContext is RunDetection with cancellation, under the same
// contract as RunSegmentationContext.
func (p *Pipeline) RunDetectionContext(ctx context.Context, stream []byte, det BoxDetector) (*DetectionResult, error) {
	dec, err := codec.DecodeObserved(stream, codec.DecodeSideInfo, p.Obs)
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	return p.runDetectionDecoded(ctx, dec, det)
}

func (p *Pipeline) runDetectionDecoded(ctx context.Context, dec *codec.DecodeResult, det BoxDetector) (*DetectionResult, error) {
	if p.workers() > 1 {
		return p.runDetectionParallel(ctx, dec, det)
	}
	res := &DetectionResult{
		Detections: make([][]detect.Detection, len(dec.Types)),
		Decode:     dec,
	}
	boxMasks := make(map[int]*video.Mask)
	scores := make(map[int]float64)
	for _, d := range dec.Order {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		info := dec.Infos[d]
		if info.Type.IsAnchor() {
			t0 := p.Obs.Clock()
			dets := det.Detect(dec.Frames[d], d)
			p.Obs.Span(obs.StageNNL, d, byte(info.Type), t0)
			res.Detections[d] = dets
			res.Stats.NNLRuns++
			m, s := anchorBoxMask(dets, dec.W, dec.H)
			boxMasks[d] = m
			scores[d] = s
			continue
		}
		res.Stats.BFrames++
		t0 := p.Obs.Clock()
		dets, err := bDetection(info, boxMasks, scores, dec.W, dec.H, dec.Cfg.BlockSize)
		p.Obs.Span(obs.StageReconstruct, d, byte(info.Type), t0)
		if err != nil {
			return res, fmt.Errorf("core: frame %d: %w", d, err)
		}
		res.Stats.MVCount += len(info.MVs)
		res.Detections[d] = dets
	}
	return res, nil
}

// anchorBoxMask rasterizes an anchor frame's detections into the mask the
// B-frame reconstruction propagates, and returns the best score.
func anchorBoxMask(dets []detect.Detection, w, h int) (*video.Mask, float64) {
	m := video.NewMask(w, h)
	var s float64
	for _, dd := range dets {
		fillRect(m, dd.Box)
		if dd.Score > s {
			s = dd.Score
		}
	}
	return m, s
}

// bDetection reconstructs one B-frame's detection from its motion vectors
// and the propagated anchor box masks (Sec III-B).
func bDetection(info codec.FrameInfo, boxMasks map[int]*video.Mask, scores map[int]float64, w, h, blockSize int) ([]detect.Detection, error) {
	rec, err := segment.Reconstruct(info, boxMasks, w, h, blockSize)
	if err != nil {
		return nil, err
	}
	score := 0.0
	n := 0
	for _, mv := range info.MVs {
		score += scores[mv.Ref]
		n++
	}
	if n > 0 {
		score /= float64(n)
	} else {
		score = 0.5
	}
	// Stray blocks whose motion vectors grazed the reference box would
	// blow up the bounding box; keep only the dominant component and trim
	// macro-block protrusions from its extent.
	box := detect.RobustBox(segment.LargestComponent(rec.Binary()), 0.02)
	if box.Empty() {
		return nil, nil
	}
	return []detect.Detection{{Box: box, Score: score}}, nil
}

func fillRect(m *video.Mask, r video.Rect) {
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			m.Set(x, y, 1)
		}
	}
}
