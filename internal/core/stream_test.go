package core

import (
	"errors"
	"testing"

	"vrdann/internal/segment"
)

func TestStreamingPipelineMatchesBatchPipeline(t *testing.T) {
	v := makeTestVideo(18, 1.2)
	stream := encodeTestVideo(t, v)
	oracle := segment.NewOracle("oracle", v.Masks, 0.05, 3, 1)

	batch := &Pipeline{NNL: oracle, Refine: false}
	bres, err := batch.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}

	sp := &StreamingPipeline{NNL: oracle, Refine: false}
	got := make(map[int]MaskOut)
	if err := sp.Run(stream, func(m MaskOut) error {
		got[m.Display] = m
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != v.Len() {
		t.Fatalf("emitted %d masks, want %d", len(got), v.Len())
	}
	for d := range bres.Masks {
		if segment.IoU(got[d].Mask, bres.Masks[d]) != 1 {
			t.Fatalf("frame %d: streaming mask differs from batch mask", d)
		}
	}
}

func TestStreamingPipelineBoundedWorkingSet(t *testing.T) {
	v := makeTestVideo(40, 0.8)
	stream := encodeTestVideo(t, v)
	sp := &StreamingPipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), Refine: false}
	maxSegs, err := sp.RunInstrumented(stream, func(MaskOut) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// The working set must not grow with the sequence length: bounded by the
	// search interval plus flanking anchors.
	if maxSegs > 9 {
		t.Fatalf("working set %d, want bounded", maxSegs)
	}
	if maxSegs < 2 {
		t.Fatalf("working set %d implausibly small", maxSegs)
	}
}

func TestStreamingPipelineEmitAbort(t *testing.T) {
	v := makeTestVideo(12, 1)
	stream := encodeTestVideo(t, v)
	sp := &StreamingPipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1)}
	boom := errors.New("boom")
	n := 0
	err := sp.Run(stream, func(MaskOut) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("emit called %d times, want 3", n)
	}
}

func TestStreamingPipelineRejectsGarbage(t *testing.T) {
	sp := &StreamingPipeline{NNL: segment.NewOracle("oracle", nil, 0, 0, 1)}
	if err := sp.Run([]byte{1, 2}, func(MaskOut) error { return nil }); err == nil {
		t.Fatal("expected header error")
	}
}

func TestDisplayOrderReordering(t *testing.T) {
	var seen []int
	emit := DisplayOrder(func(m MaskOut) error {
		seen = append(seen, m.Display)
		return nil
	})
	// Feed decode-order-ish sequence 0,4,1,2,3,5.
	for _, d := range []int{0, 4, 1, 2, 3, 5} {
		if err := emit(MaskOut{Display: d}); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(seen) != len(want) {
		t.Fatalf("emitted %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order %v, want %v", seen, want)
		}
	}
}

func TestStreamingPipelineWithDisplayOrder(t *testing.T) {
	v := makeTestVideo(16, 1.5)
	stream := encodeTestVideo(t, v)
	sp := &StreamingPipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1)}
	next := 0
	err := sp.Run(stream, DisplayOrder(func(m MaskOut) error {
		if m.Display != next {
			t.Fatalf("got display %d, want %d", m.Display, next)
		}
		next++
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if next != 16 {
		t.Fatalf("emitted %d frames in order", next)
	}
}
