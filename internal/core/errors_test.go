package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/segment"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassNone},
		{"bitstream", codec.ErrBitstream, ClassMalformed},
		{"wrapped-bitstream", fmt.Errorf("core: decode: %w",
			fmt.Errorf("%w: bad block mode 9", codec.ErrBitstream)), ClassMalformed},
		{"eof", io.ErrUnexpectedEOF, ClassMalformed},
		{"canceled", context.Canceled, ClassCanceled},
		{"deadline", fmt.Errorf("step: %w", context.DeadlineExceeded), ClassCanceled},
		{"internal", errors.New("core: frame 3: reference mask missing"), ClassInternal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	for c, want := range map[ErrorClass]string{
		ClassNone: "none", ClassMalformed: "malformed",
		ClassCanceled: "canceled", ClassInternal: "internal",
	} {
		if c.String() != want {
			t.Errorf("class %d stringifies as %q, want %q", c, c.String(), want)
		}
	}
}

// TestStepErrorsClassifyMalformed drives a real engine over a
// corrupt-payload chunk and checks the step API's error classifies as
// malformed — the contract the serving layer's quarantine path keys on.
func TestStepErrorsClassifyMalformed(t *testing.T) {
	v := makeTestVideo(12, 1.5)
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info, err := codec.ProbeStream(st.Data)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), st.Data...)
	for i := info.HeaderBytes + len(corrupt)/4; i < len(corrupt); i += 3 {
		corrupt[i] ^= 0xA5
	}
	dec, err := codec.NewStreamDecoder(corrupt, codec.DecodeSideInfo)
	if err != nil {
		t.Skipf("corruption rejected at header: %v", err)
	}
	p := &StreamingPipeline{NNL: segment.NewOracle("cls", v.Masks, 0, 0, 1), Workers: 1}
	e := p.NewEngine(dec)
	for {
		mo, serr := e.Step(context.Background())
		if serr != nil {
			if got := Classify(serr); got != ClassMalformed {
				t.Fatalf("step error %v classified %v, want malformed", serr, got)
			}
			return
		}
		if mo == nil {
			t.Fatal("corrupt chunk decoded to completion; corruption too weak for this test")
		}
	}
}

// TestStepCancellationClassifies pins that a cancelled step yields
// ClassCanceled, not a class that would count against the stream.
func TestStepCancellationClassifies(t *testing.T) {
	v := makeTestVideo(8, 1)
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewStreamDecoder(st.Data, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	p := &StreamingPipeline{NNL: segment.NewOracle("cls", v.Masks, 0, 0, 1), Workers: 1}
	e := p.NewEngine(dec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, serr := e.Step(ctx); Classify(serr) != ClassCanceled {
		t.Fatalf("cancelled step error %v did not classify canceled", serr)
	}
}
