package core

import (
	"context"
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/obs"
	"vrdann/internal/qos"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// StepSelector picks the QoS ladder rung for a B-frame about to be
// processed (see internal/qos). It is consulted once per B-frame, before
// any per-frame work; anchors are never offered — their segmentations are
// the references every later frame depends on. A nil selector serves every
// B-frame on qos.StepRefine, the paper's canonical path.
type StepSelector func(codec.FrameInfo) qos.Step

// PendingNN is the NN half of one engine step, split off by StepPrepare so
// a scheduler can route it through a cross-stream batching engine instead
// of executing it inline. It carries exactly one of two kinds of work,
// mirroring the paper's two networks:
//
//   - anchor (I/P): an NN-L segmentation of the decoded frame;
//   - B-frame: an NN-S refinement of the MV-reconstructed mask between its
//     flanking anchor segmentations.
//
// The holder must finish the step by calling Finish with the computed mask
// (however it was computed — inline, or as one lane of a fused batch)
// before the next StepPrepare on the same engine. A PendingNN borrows the
// engine's state and is not safe to retain past Finish.
type PendingNN struct {
	e  *StreamEngine
	mo *MaskOut

	// NN-L work: the decoded frame to segment (nil on the refinement
	// path). Anchors always carry it; a B-frame carries it only when the
	// QoS ladder promoted it to full re-segmentation (reseg below).
	frame *video.Frame

	// reseg marks a B-frame promoted to the full NN-L rung. Its mask is
	// emitted but must stay out of the reference window: the window's
	// pruning schedule only tracks anchor displays, and later frames'
	// bit-identity contract is anchored on anchor-only references.
	reseg bool
	// info is retained for reseg work so a deadline retraction can fall
	// back to the MV reconstruction without re-decoding.
	info codec.FrameInfo

	// B-frame work: the refinement sandwich inputs (nil for anchors). When
	// the residual skip cropped the frame, these are the dirty-rect crops.
	prev, next *video.Mask
	rec        *segment.ReconMask

	// Residual-skip crop state: when base is non-nil the sandwich above
	// covers only the dirty rectangle, and Finish composites the refined
	// crop over base (the full-frame MV reconstruction) at (cropX, cropY).
	base         *video.Mask
	cropX, cropY int
}

// IsAnchor reports whether this is NN-L (full segmentation) work, as
// opposed to NN-S (B-frame refinement) work. True for anchors and for
// B-frames promoted to the ladder's full rung.
func (pn *PendingNN) IsAnchor() bool { return pn.frame != nil }

// Retractable reports whether the work may be degraded after the fact (a
// deadline overrun while queued in a batcher): all B-frame work is, true
// anchors are not — their segmentations are references later frames need.
func (pn *PendingNN) Retractable() bool { return pn.frame == nil || pn.reseg }

// FallbackMask computes the ladder's next-cheaper result for retractable
// work without running the pending network: the raw MV reconstruction (for
// residual-skip crops, the full-frame base the refined crop would have been
// composited over). It returns nil for non-retractable work, or if the
// reconstruction itself fails.
func (pn *PendingNN) FallbackMask() *video.Mask {
	switch {
	case pn.base != nil:
		return pn.base
	case pn.rec != nil:
		return pn.rec.Binary()
	case pn.reseg:
		rec, err := segment.Reconstruct(pn.info, pn.e.segs, pn.e.w, pn.e.h, pn.e.cfg.BlockSize)
		if err != nil {
			return nil
		}
		return rec.Binary()
	}
	return nil
}

// Display returns the display index of the frame under work.
func (pn *PendingNN) Display() int { return pn.mo.Display }

// FrameType returns the coded type of the frame under work.
func (pn *PendingNN) FrameType() codec.FrameType { return pn.mo.Type }

// Frame returns the decoded anchor frame (nil for B-frame work).
func (pn *PendingNN) Frame() *video.Frame { return pn.frame }

// RefineInputs returns the NN-S sandwich inputs (all nil for anchor work).
func (pn *PendingNN) RefineInputs() (prev *video.Mask, rec *segment.ReconMask, next *video.Mask) {
	return pn.prev, pn.rec, pn.next
}

// Segmenter returns the stream's NN-L model.
func (pn *PendingNN) Segmenter() segment.Segmenter { return pn.e.p.NNL }

// ExecuteLocal computes the pending mask inline on the caller's goroutine
// with the engine's own models, recording the same nn-l/refine spans as the
// fused serial loop. StepFunc is built on it; a scheduler uses it as the
// unbatched fallback.
func (pn *PendingNN) ExecuteLocal() *video.Mask {
	p := pn.e.p
	if pn.frame != nil {
		t0 := p.Obs.Clock()
		m := p.NNL.Segment(pn.frame, pn.mo.Display)
		p.Obs.Span(obs.StageNNL, pn.mo.Display, byte(pn.mo.Type), t0)
		return m
	}
	t1 := p.Obs.Clock()
	m := pn.e.refiner.Refine(pn.prev, pn.rec, pn.next)
	p.Obs.Span(obs.StageRefine, pn.mo.Display, byte(pn.mo.Type), t1)
	return m
}

// Finish completes the step with the computed mask: anchor masks join the
// engine's reference window, and the window bookkeeping deferred by
// StepPrepare (high-watermark, gauge, pruning) runs exactly as the fused
// step would have run it. For residual-skip crops the mask is the refined
// dirty rectangle, composited here over the full-frame reconstruction.
func (pn *PendingNN) Finish(mask *video.Mask) *MaskOut {
	if pn.base != nil {
		segment.PasteMask(pn.base, mask, pn.cropX, pn.cropY)
		mask = pn.base
	}
	pn.mo.Mask = mask
	if pn.frame != nil && !pn.reseg {
		pn.e.segs[pn.mo.Display] = mask
	}
	pn.e.finishStep()
	return pn.mo
}

// sourceMask consults the pipeline's MaskSource for a frame, if one is
// configured. Drop-vetoed frames never reach it.
func (e *StreamEngine) sourceMask(info codec.FrameInfo) *video.Mask {
	if e.p.MaskSource == nil {
		return nil
	}
	return e.p.MaskSource(info.Display, info.Type)
}

// finishStep is the tail of a step: working-set accounting and reference
// pruning. It runs after every step, NN-bearing or not.
func (e *StreamEngine) finishStep() {
	if len(e.segs) > e.maxSegs {
		e.maxSegs = len(e.segs)
	}
	e.p.Obs.GaugeSet(obs.GaugeRefWindow, int64(len(e.segs)))
	// Prune references no later frame needs. The serial loop pruned after
	// emitting; pruning before the caller emits is equivalent because emit
	// never reads the window and the next Step sees the same pruned state.
	for d, last := range e.lastUse {
		if last <= e.pos {
			delete(e.segs, d)
			delete(e.lastUse, d)
		}
	}
}

// StepPrepare runs the decode-side half of a step — decode, ladder-rung
// selection, MV reconstruction — and either completes the frame itself
// (returning pending == nil: end of stream, shed B-frame, or unrefined
// reconstruction) or returns the frame's NN work as a PendingNN for the
// caller to execute and Finish. mo is non-nil exactly when pending is nil
// and a frame was produced; when pending is non-nil the MaskOut is
// delivered by Finish instead.
//
// The selector is consulted once per B-frame. qos.StepSkip sheds the frame
// (side info is still consumed; the entropy coder must advance);
// qos.StepRecon stops at the raw MV reconstruction; qos.StepRefine is the
// canonical refinement path; qos.StepFull promotes the B-frame to NN-L
// re-segmentation when its pixels were decoded (side-info decoders fall
// back to refinement — there is nothing to segment). The pipeline's
// MaskSource (content cache) is consulted only on the canonical rung:
// degraded masks must neither be served from nor published to a cache
// keyed on the full-quality configuration. Anchors never consult the
// selector.
//
// StepFunc(ctx, sel) is equivalent to StepPrepare followed by
// pending.Finish(pending.ExecuteLocal()) — the serving layer swaps
// ExecuteLocal for a batched execution and everything else stays shared,
// which is what makes batched output bit-identical by construction.
func (e *StreamEngine) StepPrepare(ctx context.Context, sel StepSelector) (mo *MaskOut, pending *PendingNN, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	p := e.p
	out, derr := e.dec.Next()
	if derr != nil {
		return nil, nil, fmt.Errorf("core: decode: %w", derr)
	}
	if out == nil {
		return nil, nil, nil
	}
	e.pos++
	mo = &MaskOut{Display: out.Info.Display, Type: out.Info.Type}
	switch out.Info.Type {
	case codec.IFrame, codec.PFrame:
		if m := e.sourceMask(out.Info); m != nil {
			// Externally supplied anchor mask (content cache hit): NN-L is
			// skipped, but the mask still enters the reference window exactly
			// as Finish would have placed it.
			mo.Mask = m
			e.segs[out.Info.Display] = m
			break
		}
		return nil, &PendingNN{e: e, mo: mo, frame: out.Pixels}, nil
	case codec.BFrame:
		step := qos.StepRefine
		if sel != nil {
			step = sel(out.Info)
		}
		if step == qos.StepSkip {
			break // shed: side info consumed, no mask computed
		}
		if step == qos.StepFull && out.Pixels != nil {
			// Ladder top rung: the B-frame is re-segmented by NN-L as if it
			// were an anchor, but reseg keeps it out of the reference window.
			return nil, &PendingNN{e: e, mo: mo, frame: out.Pixels, reseg: true, info: out.Info}, nil
		}
		if step == qos.StepRefine {
			if m := e.sourceMask(out.Info); m != nil {
				// Cache hit: reconstruction and NN-S are both skipped — the mask
				// is a pure function of the chunk bytes, which the source keys on.
				mo.Mask = m
				break
			}
		}
		t0 := p.Obs.Clock()
		rec, rerr := segment.Reconstruct(out.Info, e.segs, e.w, e.h, e.cfg.BlockSize)
		p.Obs.Span(obs.StageReconstruct, out.Info.Display, byte(out.Info.Type), t0)
		if rerr != nil {
			return nil, nil, fmt.Errorf("core: frame %d: %w", out.Info.Display, rerr)
		}
		if e.refiner == nil || step == qos.StepRecon {
			mo.Mask = rec.Binary()
			break
		}
		prev, next := flankingAnchors(e.types, e.segs, out.Info.Display)
		if p.SkipResidual {
			rect, dirty, total, known := segment.ResidualDirtyRect(out.Info.BlockEnergy, e.w, e.h, e.cfg.BlockSize, p.SkipThreshold, segment.ResidualHalo)
			if !known {
				p.Obs.Count(obs.CounterQuantBlocksUnknown, int64(total))
			} else {
				p.Obs.Count(obs.CounterQuantBlocksSkipped, int64(total-dirty))
				p.Obs.Count(obs.CounterQuantBlocksDirty, int64(dirty))
			}
			if rect.Empty() {
				// Every block's motion-compensated prediction survived the
				// threshold: the reconstruction is the answer, no NN work.
				mo.Mask = rec.Binary()
				break
			}
			if !rect.Full(e.w, e.h) {
				return nil, &PendingNN{
					e: e, mo: mo,
					prev: segment.CropMask(prev, rect),
					next: segment.CropMask(next, rect),
					rec:  rec.Crop(rect),
					base: rec.Binary(), cropX: rect.X0, cropY: rect.Y0,
				}, nil
			}
		}
		return nil, &PendingNN{e: e, mo: mo, prev: prev, next: next, rec: rec}, nil
	}
	e.finishStep()
	return mo, nil, nil
}
