package core

import (
	"context"
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// PendingNN is the NN half of one engine step, split off by StepPrepare so
// a scheduler can route it through a cross-stream batching engine instead
// of executing it inline. It carries exactly one of two kinds of work,
// mirroring the paper's two networks:
//
//   - anchor (I/P): an NN-L segmentation of the decoded frame;
//   - B-frame: an NN-S refinement of the MV-reconstructed mask between its
//     flanking anchor segmentations.
//
// The holder must finish the step by calling Finish with the computed mask
// (however it was computed — inline, or as one lane of a fused batch)
// before the next StepPrepare on the same engine. A PendingNN borrows the
// engine's state and is not safe to retain past Finish.
type PendingNN struct {
	e  *StreamEngine
	mo *MaskOut

	// Anchor work: the decoded frame to segment (nil for B-frames).
	frame *video.Frame

	// B-frame work: the refinement sandwich inputs (nil for anchors). When
	// the residual skip cropped the frame, these are the dirty-rect crops.
	prev, next *video.Mask
	rec        *segment.ReconMask

	// Residual-skip crop state: when base is non-nil the sandwich above
	// covers only the dirty rectangle, and Finish composites the refined
	// crop over base (the full-frame MV reconstruction) at (cropX, cropY).
	base         *video.Mask
	cropX, cropY int
}

// IsAnchor reports whether this is NN-L (anchor segmentation) work, as
// opposed to NN-S (B-frame refinement) work.
func (pn *PendingNN) IsAnchor() bool { return pn.frame != nil }

// Display returns the display index of the frame under work.
func (pn *PendingNN) Display() int { return pn.mo.Display }

// FrameType returns the coded type of the frame under work.
func (pn *PendingNN) FrameType() codec.FrameType { return pn.mo.Type }

// Frame returns the decoded anchor frame (nil for B-frame work).
func (pn *PendingNN) Frame() *video.Frame { return pn.frame }

// RefineInputs returns the NN-S sandwich inputs (all nil for anchor work).
func (pn *PendingNN) RefineInputs() (prev *video.Mask, rec *segment.ReconMask, next *video.Mask) {
	return pn.prev, pn.rec, pn.next
}

// Segmenter returns the stream's NN-L model.
func (pn *PendingNN) Segmenter() segment.Segmenter { return pn.e.p.NNL }

// ExecuteLocal computes the pending mask inline on the caller's goroutine
// with the engine's own models, recording the same nn-l/refine spans as the
// fused serial loop. StepFunc is built on it; a scheduler uses it as the
// unbatched fallback.
func (pn *PendingNN) ExecuteLocal() *video.Mask {
	p := pn.e.p
	if pn.frame != nil {
		t0 := p.Obs.Clock()
		m := p.NNL.Segment(pn.frame, pn.mo.Display)
		p.Obs.Span(obs.StageNNL, pn.mo.Display, byte(pn.mo.Type), t0)
		return m
	}
	t1 := p.Obs.Clock()
	m := pn.e.refiner.Refine(pn.prev, pn.rec, pn.next)
	p.Obs.Span(obs.StageRefine, pn.mo.Display, byte(pn.mo.Type), t1)
	return m
}

// Finish completes the step with the computed mask: anchor masks join the
// engine's reference window, and the window bookkeeping deferred by
// StepPrepare (high-watermark, gauge, pruning) runs exactly as the fused
// step would have run it. For residual-skip crops the mask is the refined
// dirty rectangle, composited here over the full-frame reconstruction.
func (pn *PendingNN) Finish(mask *video.Mask) *MaskOut {
	if pn.base != nil {
		segment.PasteMask(pn.base, mask, pn.cropX, pn.cropY)
		mask = pn.base
	}
	pn.mo.Mask = mask
	if pn.frame != nil {
		pn.e.segs[pn.mo.Display] = mask
	}
	pn.e.finishStep()
	return pn.mo
}

// sourceMask consults the pipeline's MaskSource for a frame, if one is
// configured. Drop-vetoed frames never reach it.
func (e *StreamEngine) sourceMask(info codec.FrameInfo) *video.Mask {
	if e.p.MaskSource == nil {
		return nil
	}
	return e.p.MaskSource(info.Display, info.Type)
}

// finishStep is the tail of a step: working-set accounting and reference
// pruning. It runs after every step, NN-bearing or not.
func (e *StreamEngine) finishStep() {
	if len(e.segs) > e.maxSegs {
		e.maxSegs = len(e.segs)
	}
	e.p.Obs.GaugeSet(obs.GaugeRefWindow, int64(len(e.segs)))
	// Prune references no later frame needs. The serial loop pruned after
	// emitting; pruning before the caller emits is equivalent because emit
	// never reads the window and the next Step sees the same pruned state.
	for d, last := range e.lastUse {
		if last <= e.pos {
			delete(e.segs, d)
			delete(e.lastUse, d)
		}
	}
}

// StepPrepare runs the decode-side half of a step — decode, drop veto,
// MV reconstruction — and either completes the frame itself (returning
// pending == nil: end of stream, dropped B-frame, or unrefined
// reconstruction) or returns the frame's NN work as a PendingNN for the
// caller to execute and Finish. mo is non-nil exactly when pending is nil
// and a frame was produced; when pending is non-nil the MaskOut is
// delivered by Finish instead.
//
// StepFunc(ctx, drop) is equivalent to StepPrepare followed by
// pending.Finish(pending.ExecuteLocal()) — the serving layer swaps
// ExecuteLocal for a batched execution and everything else stays shared,
// which is what makes batched output bit-identical by construction.
func (e *StreamEngine) StepPrepare(ctx context.Context, drop func(codec.FrameInfo) bool) (mo *MaskOut, pending *PendingNN, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	p := e.p
	out, derr := e.dec.Next()
	if derr != nil {
		return nil, nil, fmt.Errorf("core: decode: %w", derr)
	}
	if out == nil {
		return nil, nil, nil
	}
	e.pos++
	mo = &MaskOut{Display: out.Info.Display, Type: out.Info.Type}
	switch out.Info.Type {
	case codec.IFrame, codec.PFrame:
		if m := e.sourceMask(out.Info); m != nil {
			// Externally supplied anchor mask (content cache hit): NN-L is
			// skipped, but the mask still enters the reference window exactly
			// as Finish would have placed it.
			mo.Mask = m
			e.segs[out.Info.Display] = m
			break
		}
		return nil, &PendingNN{e: e, mo: mo, frame: out.Pixels}, nil
	case codec.BFrame:
		if drop != nil && drop(out.Info) {
			break // shed: side info consumed, no mask computed
		}
		if m := e.sourceMask(out.Info); m != nil {
			// Cache hit: reconstruction and NN-S are both skipped — the mask
			// is a pure function of the chunk bytes, which the source keys on.
			mo.Mask = m
			break
		}
		t0 := p.Obs.Clock()
		rec, rerr := segment.Reconstruct(out.Info, e.segs, e.w, e.h, e.cfg.BlockSize)
		p.Obs.Span(obs.StageReconstruct, out.Info.Display, byte(out.Info.Type), t0)
		if rerr != nil {
			return nil, nil, fmt.Errorf("core: frame %d: %w", out.Info.Display, rerr)
		}
		if e.refiner == nil {
			mo.Mask = rec.Binary()
			break
		}
		prev, next := flankingAnchors(e.types, e.segs, out.Info.Display)
		if p.SkipResidual {
			rect, dirty, total, known := segment.ResidualDirtyRect(out.Info.BlockEnergy, e.w, e.h, e.cfg.BlockSize, p.SkipThreshold, segment.ResidualHalo)
			if !known {
				p.Obs.Count(obs.CounterQuantBlocksUnknown, int64(total))
			} else {
				p.Obs.Count(obs.CounterQuantBlocksSkipped, int64(total-dirty))
				p.Obs.Count(obs.CounterQuantBlocksDirty, int64(dirty))
			}
			if rect.Empty() {
				// Every block's motion-compensated prediction survived the
				// threshold: the reconstruction is the answer, no NN work.
				mo.Mask = rec.Binary()
				break
			}
			if !rect.Full(e.w, e.h) {
				return nil, &PendingNN{
					e: e, mo: mo,
					prev: segment.CropMask(prev, rect),
					next: segment.CropMask(next, rect),
					rec:  rec.Crop(rect),
					base: rec.Binary(), cropX: rect.X0, cropY: rect.Y0,
				}, nil
			}
		}
		return nil, &PendingNN{e: e, mo: mo, prev: prev, next: next, rec: rec}, nil
	}
	e.finishStep()
	return mo, nil, nil
}
