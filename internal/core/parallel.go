// Overlapped execution of the VR-DANN pipeline — the software analog of the
// paper's agent unit (Sec IV). NN-L anchor inference runs as its own stage
// while B-frame motion-vector reconstruction and NN-S refinement proceed on
// a pool of workers as soon as the anchors they depend on resolve.
//
// Bit-identical output across worker counts is the design invariant. Each
// B-frame job reconstructs against exactly the set of anchor segmentations
// the serial decode-order loop would have held at that position (its decode
// prefix), so nearestRef's tie-breaks and flankingAnchors see the same maps
// serial execution sees; every mask slot is written by exactly one
// goroutine; and per-worker Stats are summed with commutative integer adds.
package core

import (
	"fmt"
	"maps"
	"sync"
	"sync/atomic"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// bJob is one B-frame work item. avail is the number of anchors that
// precede the frame in decode order — its dependency set — and slot is the
// job's decode-order position among B-frames, used to return the same
// first-in-decode-order error the serial loop would.
type bJob struct {
	d, avail, slot int
}

// splitDecodeOrder partitions the decode order into the anchor stage
// sequence and the B-frame jobs with their dependency counts.
func splitDecodeOrder(dec *codec.DecodeResult) (anchors []int, jobs []bJob) {
	for _, d := range dec.Order {
		if dec.Types[d].IsAnchor() {
			anchors = append(anchors, d)
		} else {
			jobs = append(jobs, bJob{d: d, avail: len(anchors), slot: len(jobs)})
		}
	}
	return anchors, jobs
}

// add accumulates another Stats value (used to merge per-worker counters).
func (s *Stats) add(o Stats) {
	s.IFrames += o.IFrames
	s.PFrames += o.PFrames
	s.BFrames += o.BFrames
	s.NNLRuns += o.NNLRuns
	s.NNSRuns += o.NNSRuns
	s.MVCount += o.MVCount
	s.BiRefMVs += o.BiRefMVs
	s.IntraFallbackBlocks += o.IntraFallbackBlocks
}

// runDecodedParallel is runDecoded restructured as the two-stage overlapped
// pipeline described in the package comment.
func (p *Pipeline) runDecodedParallel(dec *codec.DecodeResult) (*Result, error) {
	res := &Result{
		Masks:  make([]*video.Mask, len(dec.Types)),
		Recons: make(map[int]*segment.ReconMask),
		Decode: dec,
	}
	anchorOrder, jobs := splitDecodeOrder(dec)
	// done[i] closes when the i-th anchor (in decode order) is segmented.
	// Anchors finish in order, so a job waits only on its last dependency.
	done := make([]chan struct{}, len(anchorOrder))
	for i := range done {
		done[i] = make(chan struct{})
	}
	anchorMasks := make([]*video.Mask, len(dec.Types))
	var anchorStats Stats
	var wg sync.WaitGroup
	// Stage 1: NN-L anchor inference, serialized on one goroutine (the
	// network caches forward-pass activations, so it is not reentrant).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, d := range anchorOrder {
			m := p.NNL.Segment(dec.Frames[d], d)
			anchorMasks[d] = m
			res.Masks[d] = m
			anchorStats.NNLRuns++
			if dec.Types[d] == codec.IFrame {
				anchorStats.IFrames++
			} else {
				anchorStats.PFrames++
			}
			close(done[i])
		}
	}()
	// Stage 2: B-frame reconstruction + refinement on the worker pool.
	nw := p.workers()
	jobCh := make(chan bJob)
	errs := make([]error, len(jobs))
	recons := make([]*segment.ReconMask, len(dec.Types))
	workerStats := make([]Stats, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var refiner *segment.Refiner
			if p.Refine && p.NNS != nil {
				refiner = segment.NewRefiner(p.NNS.Clone())
			}
			st := &workerStats[w]
			for job := range jobCh {
				if job.avail > 0 {
					<-done[job.avail-1]
				}
				segs := make(map[int]*video.Mask, job.avail)
				for _, a := range anchorOrder[:job.avail] {
					segs[a] = anchorMasks[a]
				}
				info := dec.Infos[job.d]
				st.BFrames++
				rec, err := segment.Reconstruct(info, segs, dec.W, dec.H, dec.Cfg.BlockSize)
				if err != nil {
					errs[job.slot] = fmt.Errorf("core: frame %d: %w", job.d, err)
					continue
				}
				recons[job.d] = rec
				st.MVCount += len(info.MVs)
				for _, mv := range info.MVs {
					if mv.BiRef {
						st.BiRefMVs++
					}
				}
				st.IntraFallbackBlocks += info.Blocks - len(info.MVs)
				if refiner != nil {
					prev, next := flankingAnchors(dec.Types, segs, job.d)
					res.Masks[job.d] = refiner.Refine(prev, rec, next)
					st.NNSRuns++
				} else {
					res.Masks[job.d] = rec.Binary()
				}
			}
		}(w)
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Stats = anchorStats
	for w := range workerStats {
		res.Stats.add(workerStats[w])
	}
	for d, rec := range recons {
		if rec != nil {
			res.Recons[d] = rec
		}
	}
	return res, nil
}

// runDetectionParallel applies the same two-stage overlap to detection: the
// detector stage rasterizes boxes into masks, the worker stage propagates
// them through motion vectors (Sec III-B).
func (p *Pipeline) runDetectionParallel(dec *codec.DecodeResult, det BoxDetector) (*DetectionResult, error) {
	res := &DetectionResult{
		Detections: make([][]detect.Detection, len(dec.Types)),
		Decode:     dec,
	}
	anchorOrder, jobs := splitDecodeOrder(dec)
	done := make([]chan struct{}, len(anchorOrder))
	for i := range done {
		done[i] = make(chan struct{})
	}
	boxMasks := make([]*video.Mask, len(dec.Types))
	boxScores := make([]float64, len(dec.Types))
	var anchorStats Stats
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, d := range anchorOrder {
			dets := det.Detect(dec.Frames[d], d)
			res.Detections[d] = dets
			anchorStats.NNLRuns++
			boxMasks[d], boxScores[d] = anchorBoxMask(dets, dec.W, dec.H)
			close(done[i])
		}
	}()
	nw := p.workers()
	jobCh := make(chan bJob)
	errs := make([]error, len(jobs))
	workerStats := make([]Stats, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &workerStats[w]
			for job := range jobCh {
				if job.avail > 0 {
					<-done[job.avail-1]
				}
				masks := make(map[int]*video.Mask, job.avail)
				scores := make(map[int]float64, job.avail)
				for _, a := range anchorOrder[:job.avail] {
					masks[a] = boxMasks[a]
					scores[a] = boxScores[a]
				}
				info := dec.Infos[job.d]
				st.BFrames++
				dets, err := bDetection(info, masks, scores, dec.W, dec.H, dec.Cfg.BlockSize)
				if err != nil {
					errs[job.slot] = fmt.Errorf("core: frame %d: %w", job.d, err)
					continue
				}
				st.MVCount += len(info.MVs)
				res.Detections[job.d] = dets
			}
		}(w)
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Stats = anchorStats
	for w := range workerStats {
		res.Stats.add(workerStats[w])
	}
	return res, nil
}

// streamItem carries one frame through the overlapped streaming pipeline.
type streamItem struct {
	out     MaskOut
	info    codec.FrameInfo
	refs    map[int]*video.Mask // reference snapshot; nil for anchor frames
	maxSegs int                 // running working-set maximum through this frame
	err     error
	done    chan struct{}
}

// runInstrumentedParallel overlaps the streaming pipeline: the decode loop
// (with inline NN-L anchor inference) runs on the caller, B-frame
// reconstruction + refinement run on p.Workers goroutines against bounded
// snapshots of the reference window, and a re-serializing emitter delivers
// results in decode order. Emitted masks, maxSegs accounting and error
// selection are identical to the serial RunInstrumented.
func (p *StreamingPipeline) runInstrumentedParallel(stream []byte, emit func(MaskOut) error) (int, error) {
	dec, err := codec.NewStreamDecoder(stream, codec.DecodeSideInfo)
	if err != nil {
		return 0, fmt.Errorf("core: stream decoder: %w", err)
	}
	types := dec.Types()
	cfg := dec.Config()
	lastUse := segLastUse(types, cfg)
	segs := make(map[int]*video.Mask)
	w, h := dec.Geometry()

	jobCh := make(chan *streamItem)
	// The emit queue is sized to the stream so the decode loop never blocks
	// on it; backpressure comes from the unbuffered job channel instead.
	emitQ := make(chan *streamItem, len(types)+1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < p.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var refiner *segment.Refiner
			if p.Refine && p.NNS != nil {
				refiner = segment.NewRefiner(p.NNS.Clone())
			}
			for it := range jobCh {
				rec, rerr := segment.Reconstruct(it.info, it.refs, w, h, cfg.BlockSize)
				switch {
				case rerr != nil:
					it.err = fmt.Errorf("core: frame %d: %w", it.out.Display, rerr)
				case refiner != nil:
					prev, next := flankingAnchors(types, it.refs, it.out.Display)
					it.out.Mask = refiner.Refine(prev, rec, next)
				default:
					it.out.Mask = rec.Binary()
				}
				close(it.done)
			}
		}()
	}
	// Emitter: waits on each frame's done channel in decode order, so
	// results leave the pipeline exactly as the serial loop would emit them.
	var emitMax int
	var emitErr error
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		for it := range emitQ {
			<-it.done
			if emitErr != nil {
				continue // drain after failure
			}
			emitMax = it.maxSegs
			if it.err != nil {
				emitErr = it.err
				stop.Store(true)
				continue
			}
			if err := emit(it.out); err != nil {
				emitErr = err
				stop.Store(true)
			}
		}
	}()
	maxSegs := 0
	pos := -1
	var decErr error
	for !stop.Load() {
		out, derr := dec.Next()
		if derr != nil {
			decErr = fmt.Errorf("core: decode: %w", derr)
			break
		}
		if out == nil {
			break
		}
		pos++
		it := &streamItem{
			out:  MaskOut{Display: out.Info.Display, Type: out.Info.Type},
			info: out.Info,
			done: make(chan struct{}),
		}
		switch out.Info.Type {
		case codec.IFrame, codec.PFrame:
			it.out.Mask = p.NNL.Segment(out.Pixels, out.Info.Display)
			segs[out.Info.Display] = it.out.Mask
			close(it.done)
		case codec.BFrame:
			// Snapshot the reference window at this decode position; the
			// pruned map stays bounded (segLastUse), so clones are small.
			it.refs = maps.Clone(segs)
		}
		if len(segs) > maxSegs {
			maxSegs = len(segs)
		}
		it.maxSegs = maxSegs
		emitQ <- it
		if it.refs != nil {
			jobCh <- it
		}
		for d, last := range lastUse {
			if last <= pos {
				delete(segs, d)
				delete(lastUse, d)
			}
		}
	}
	close(jobCh)
	wg.Wait()
	close(emitQ)
	<-emitDone
	if emitErr != nil {
		return emitMax, emitErr
	}
	return maxSegs, decErr
}
