// Overlapped execution of the VR-DANN pipeline — the software analog of the
// paper's agent unit (Sec IV). NN-L anchor inference runs as its own stage
// while B-frame motion-vector reconstruction and NN-S refinement proceed on
// a pool of workers as soon as the anchors they depend on resolve.
//
// Bit-identical output across worker counts is the design invariant. Each
// B-frame job reconstructs against exactly the set of anchor segmentations
// the serial decode-order loop would have held at that position (its decode
// prefix), so nearestRef's tie-breaks and flankingAnchors see the same maps
// serial execution sees; every mask slot is written by exactly one
// goroutine; and per-worker Stats are summed with commutative integer adds.
package core

import (
	"context"
	"fmt"
	"maps"
	"sync"
	"sync/atomic"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// bJob is one B-frame work item. avail is the number of anchors that
// precede the frame in decode order — its dependency set — and slot is the
// job's decode-order position among B-frames, used to return the same
// first-in-decode-order error the serial loop would.
type bJob struct {
	d, avail, slot int
}

// splitDecodeOrder partitions the decode order into the anchor stage
// sequence and the B-frame jobs with their dependency counts.
func splitDecodeOrder(dec *codec.DecodeResult) (anchors []int, jobs []bJob) {
	for _, d := range dec.Order {
		if dec.Types[d].IsAnchor() {
			anchors = append(anchors, d)
		} else {
			jobs = append(jobs, bJob{d: d, avail: len(anchors), slot: len(jobs)})
		}
	}
	return anchors, jobs
}

// add accumulates another Stats value (used to merge per-worker counters).
func (s *Stats) add(o Stats) {
	s.IFrames += o.IFrames
	s.PFrames += o.PFrames
	s.BFrames += o.BFrames
	s.NNLRuns += o.NNLRuns
	s.NNSRuns += o.NNSRuns
	s.MVCount += o.MVCount
	s.BiRefMVs += o.BiRefMVs
	s.IntraFallbackBlocks += o.IntraFallbackBlocks
}

// mergeStats sums per-anchor and per-job stats. On success (failSlot < 0)
// everything merges — the commutative total the success path always used.
// On failure at job slot failSlot (whose dependency set is avail anchors),
// it reproduces the serial decode-order prefix exactly: all anchors the
// serial loop would have segmented before the failing frame, every B-frame
// job preceding it in decode order, and the failing job's own partial
// counters (BFrames is incremented before reconstruction can fail). This is
// what makes partial-run Stats bit-identical between the serial and
// parallel paths no matter which worker hit the error first in wall time.
func mergeStats(anchorStats, jobStats []Stats, failSlot, avail int) Stats {
	var s Stats
	na, nj := len(anchorStats), len(jobStats)
	if failSlot >= 0 {
		na, nj = avail, failSlot+1
	}
	for i := 0; i < na; i++ {
		s.add(anchorStats[i])
	}
	for i := 0; i < nj; i++ {
		s.add(jobStats[i])
	}
	return s
}

// firstError returns the slot and error of the first failed job in decode
// order, or (-1, nil).
func firstError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// runDecodedParallel is runDecoded restructured as the two-stage overlapped
// pipeline described in the package comment.
//
// Cancellation: the anchor stage checks the context before each anchor and,
// on cancel, closes every remaining done channel before exiting so no
// worker blocks on a dependency that will never resolve; workers see the
// cancelled context (or a nil anchor mask) and skip the job; the feeder
// stops submitting. After wg.Wait the function returns ctx.Err(), which
// takes precedence over any job error the race produced.
func (p *Pipeline) runDecodedParallel(ctx context.Context, dec *codec.DecodeResult) (*Result, error) {
	res := &Result{
		Masks:  make([]*video.Mask, len(dec.Types)),
		Recons: make(map[int]*segment.ReconMask),
		Decode: dec,
	}
	anchorOrder, jobs := splitDecodeOrder(dec)
	// done[i] closes when the i-th anchor (in decode order) is segmented.
	// Anchors finish in order, so a job waits only on its last dependency.
	done := make([]chan struct{}, len(anchorOrder))
	for i := range done {
		done[i] = make(chan struct{})
	}
	anchorMasks := make([]*video.Mask, len(dec.Types))
	// Stats are recorded per anchor index and per job slot (not per worker)
	// so the error path can merge exactly the serial decode-order prefix —
	// see mergeStats. On success the sums are identical either way.
	anchorStats := make([]Stats, len(anchorOrder))
	jobStats := make([]Stats, len(jobs))
	var wg sync.WaitGroup
	// Stage 1: NN-L anchor inference, serialized on one goroutine (the
	// network caches forward-pass activations, so it is not reentrant).
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		// On early exit, release every remaining dependency wait; the
		// workers re-check the context after waking.
		defer func() {
			for ; next < len(done); next++ {
				close(done[next])
			}
		}()
		for i, d := range anchorOrder {
			if ctx.Err() != nil {
				return
			}
			t0 := p.Obs.Clock()
			m := p.NNL.Segment(dec.Frames[d], d)
			p.Obs.Span(obs.StageNNL, d, byte(dec.Types[d]), t0)
			anchorMasks[d] = m
			res.Masks[d] = m
			anchorStats[i].NNLRuns++
			if dec.Types[d] == codec.IFrame {
				anchorStats[i].IFrames++
			} else {
				anchorStats[i].PFrames++
			}
			close(done[i])
			next = i + 1
		}
	}()
	// Stage 2: B-frame reconstruction + refinement on the worker pool. After
	// a job fails, workers keep draining jobCh (the channel is never closed
	// under them and `done` waits stay satisfiable), so every goroutine
	// exits through wg.Wait with no leak and no send-on-closed — the abort
	// simply discards results at the merge step below.
	nw := p.workers()
	jobCh := make(chan bJob)
	errs := make([]error, len(jobs))
	recons := make([]*segment.ReconMask, len(dec.Types))
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			refiner := p.refiner(true)
			for job := range jobCh {
				if job.avail > 0 {
					<-done[job.avail-1]
				}
				if ctx.Err() != nil {
					p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
					continue
				}
				p.Obs.GaugeAdd(obs.GaugeWorkers, 1)
				segs := make(map[int]*video.Mask, job.avail)
				for _, a := range anchorOrder[:job.avail] {
					// A nil entry means the anchor stage was cancelled before
					// reaching this anchor; leave it absent so Reconstruct
					// reports a missing reference instead of dereferencing nil
					// (the error is discarded — ctx.Err() wins below).
					if m := anchorMasks[a]; m != nil {
						segs[a] = m
					}
				}
				info := dec.Infos[job.d]
				st := &jobStats[job.slot]
				st.BFrames++
				t0 := p.Obs.Clock()
				rec, err := segment.Reconstruct(info, segs, dec.W, dec.H, dec.Cfg.BlockSize)
				p.Obs.Span(obs.StageReconstruct, job.d, byte(codec.BFrame), t0)
				if err != nil {
					errs[job.slot] = fmt.Errorf("core: frame %d: %w", job.d, err)
					p.Obs.GaugeAdd(obs.GaugeWorkers, -1)
					p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
					continue
				}
				recons[job.d] = rec
				st.MVCount += len(info.MVs)
				for _, mv := range info.MVs {
					if mv.BiRef {
						st.BiRefMVs++
					}
				}
				st.IntraFallbackBlocks += info.Blocks - len(info.MVs)
				if refiner != nil {
					prev, next := flankingAnchors(dec.Types, segs, job.d)
					t1 := p.Obs.Clock()
					m, ran := p.refineB(refiner, info, rec, prev, next, dec.W, dec.H, dec.Cfg.BlockSize)
					res.Masks[job.d] = m
					p.Obs.Span(obs.StageRefine, job.d, byte(codec.BFrame), t1)
					if ran {
						st.NNSRuns++
					}
				} else {
					res.Masks[job.d] = rec.Binary()
				}
				p.Obs.GaugeAdd(obs.GaugeWorkers, -1)
				p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
			}
		}()
	}
	for _, job := range jobs {
		if ctx.Err() != nil {
			break
		}
		p.Obs.GaugeAdd(obs.GaugeJobQueue, 1)
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		res.Stats = mergeStats(anchorStats, jobStats, -1, 0)
		return res, err
	}
	if slot, err := firstError(errs); err != nil {
		res.Stats = mergeStats(anchorStats, jobStats, slot, jobs[slot].avail)
		return res, err
	}
	res.Stats = mergeStats(anchorStats, jobStats, -1, 0)
	for d, rec := range recons {
		if rec != nil {
			res.Recons[d] = rec
		}
	}
	return res, nil
}

// runDetectionParallel applies the same two-stage overlap to detection: the
// detector stage rasterizes boxes into masks, the worker stage propagates
// them through motion vectors (Sec III-B). Cancellation follows the
// runDecodedParallel protocol.
func (p *Pipeline) runDetectionParallel(ctx context.Context, dec *codec.DecodeResult, det BoxDetector) (*DetectionResult, error) {
	res := &DetectionResult{
		Detections: make([][]detect.Detection, len(dec.Types)),
		Decode:     dec,
	}
	anchorOrder, jobs := splitDecodeOrder(dec)
	done := make([]chan struct{}, len(anchorOrder))
	for i := range done {
		done[i] = make(chan struct{})
	}
	boxMasks := make([]*video.Mask, len(dec.Types))
	boxScores := make([]float64, len(dec.Types))
	anchorStats := make([]Stats, len(anchorOrder))
	jobStats := make([]Stats, len(jobs))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		defer func() {
			for ; next < len(done); next++ {
				close(done[next])
			}
		}()
		for i, d := range anchorOrder {
			if ctx.Err() != nil {
				return
			}
			t0 := p.Obs.Clock()
			dets := det.Detect(dec.Frames[d], d)
			p.Obs.Span(obs.StageNNL, d, byte(dec.Types[d]), t0)
			res.Detections[d] = dets
			anchorStats[i].NNLRuns++
			boxMasks[d], boxScores[d] = anchorBoxMask(dets, dec.W, dec.H)
			close(done[i])
			next = i + 1
		}
	}()
	nw := p.workers()
	jobCh := make(chan bJob)
	errs := make([]error, len(jobs))
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if job.avail > 0 {
					<-done[job.avail-1]
				}
				if ctx.Err() != nil {
					p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
					continue
				}
				p.Obs.GaugeAdd(obs.GaugeWorkers, 1)
				masks := make(map[int]*video.Mask, job.avail)
				scores := make(map[int]float64, job.avail)
				for _, a := range anchorOrder[:job.avail] {
					if m := boxMasks[a]; m != nil {
						masks[a] = m
						scores[a] = boxScores[a]
					}
				}
				info := dec.Infos[job.d]
				st := &jobStats[job.slot]
				st.BFrames++
				t0 := p.Obs.Clock()
				dets, err := bDetection(info, masks, scores, dec.W, dec.H, dec.Cfg.BlockSize)
				p.Obs.Span(obs.StageReconstruct, job.d, byte(codec.BFrame), t0)
				p.Obs.GaugeAdd(obs.GaugeWorkers, -1)
				p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
				if err != nil {
					errs[job.slot] = fmt.Errorf("core: frame %d: %w", job.d, err)
					continue
				}
				st.MVCount += len(info.MVs)
				res.Detections[job.d] = dets
			}
		}()
	}
	for _, job := range jobs {
		if ctx.Err() != nil {
			break
		}
		p.Obs.GaugeAdd(obs.GaugeJobQueue, 1)
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		res.Stats = mergeStats(anchorStats, jobStats, -1, 0)
		return res, err
	}
	if slot, err := firstError(errs); err != nil {
		res.Stats = mergeStats(anchorStats, jobStats, slot, jobs[slot].avail)
		return res, err
	}
	res.Stats = mergeStats(anchorStats, jobStats, -1, 0)
	return res, nil
}

// streamItem carries one frame through the overlapped streaming pipeline.
type streamItem struct {
	out     MaskOut
	info    codec.FrameInfo
	refs    map[int]*video.Mask // reference snapshot; nil for anchor frames
	maxSegs int                 // running working-set maximum through this frame
	err     error
	done    chan struct{}
}

// runInstrumentedParallel overlaps the streaming pipeline: the decode loop
// (with inline NN-L anchor inference) runs on the caller, B-frame
// reconstruction + refinement run on p.Workers goroutines against bounded
// snapshots of the reference window, and a re-serializing emitter delivers
// results in decode order. Emitted masks, maxSegs accounting and error
// selection are identical to the serial RunInstrumented.
//
// Cancellation stops the decode loop; frames already submitted still flow
// through the workers and the emitter (the emitted sequence stays a clean
// decode-order prefix) before the normal shutdown drains every goroutine
// and the call returns ctx.Err().
func (p *StreamingPipeline) runInstrumentedParallel(ctx context.Context, stream []byte, emit func(MaskOut) error) (int, error) {
	dec, err := codec.NewStreamDecoder(stream, codec.DecodeSideInfo)
	if err != nil {
		return 0, fmt.Errorf("core: stream decoder: %w", err)
	}
	types := dec.Types()
	cfg := dec.Config()
	lastUse := segLastUse(types, cfg)
	segs := make(map[int]*video.Mask)
	w, h := dec.Geometry()

	dec.SetObserver(p.Obs)
	jobCh := make(chan *streamItem)
	// The emit queue is sized to the stream so the decode loop never blocks
	// on it; backpressure comes from the unbuffered job channel instead.
	emitQ := make(chan *streamItem, len(types)+1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < p.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl := p.pipeline()
			refiner := pl.refiner(true)
			for it := range jobCh {
				p.Obs.GaugeAdd(obs.GaugeJobQueue, -1)
				p.Obs.GaugeAdd(obs.GaugeWorkers, 1)
				t0 := p.Obs.Clock()
				rec, rerr := segment.Reconstruct(it.info, it.refs, w, h, cfg.BlockSize)
				p.Obs.Span(obs.StageReconstruct, it.out.Display, byte(it.out.Type), t0)
				switch {
				case rerr != nil:
					it.err = fmt.Errorf("core: frame %d: %w", it.out.Display, rerr)
				case refiner != nil:
					prev, next := flankingAnchors(types, it.refs, it.out.Display)
					t1 := p.Obs.Clock()
					it.out.Mask, _ = pl.refineB(refiner, it.info, rec, prev, next, w, h, cfg.BlockSize)
					p.Obs.Span(obs.StageRefine, it.out.Display, byte(it.out.Type), t1)
				default:
					it.out.Mask = rec.Binary()
				}
				p.Obs.GaugeAdd(obs.GaugeWorkers, -1)
				close(it.done)
			}
		}()
	}
	// Emitter: waits on each frame's done channel in decode order, so
	// results leave the pipeline exactly as the serial loop would emit them.
	var emitMax int
	var emitErr error
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		for it := range emitQ {
			<-it.done
			p.Obs.GaugeAdd(obs.GaugeEmitQueue, -1)
			if emitErr != nil {
				continue // drain after failure
			}
			emitMax = it.maxSegs
			if it.err != nil {
				emitErr = it.err
				stop.Store(true)
				continue
			}
			t0 := p.Obs.Clock()
			err := emit(it.out)
			p.Obs.Span(obs.StageEmit, it.out.Display, byte(it.out.Type), t0)
			if err != nil {
				emitErr = err
				stop.Store(true)
			}
		}
	}()
	maxSegs := 0
	pos := -1
	var decErr error
	for !stop.Load() {
		if err := ctx.Err(); err != nil {
			decErr = err
			break
		}
		out, derr := dec.Next()
		if derr != nil {
			decErr = fmt.Errorf("core: decode: %w", derr)
			break
		}
		if out == nil {
			break
		}
		pos++
		it := &streamItem{
			out:  MaskOut{Display: out.Info.Display, Type: out.Info.Type},
			info: out.Info,
			done: make(chan struct{}),
		}
		switch out.Info.Type {
		case codec.IFrame, codec.PFrame:
			t0 := p.Obs.Clock()
			it.out.Mask = p.NNL.Segment(out.Pixels, out.Info.Display)
			p.Obs.Span(obs.StageNNL, out.Info.Display, byte(out.Info.Type), t0)
			segs[out.Info.Display] = it.out.Mask
			close(it.done)
		case codec.BFrame:
			// Snapshot the reference window at this decode position; the
			// pruned map stays bounded (segLastUse), so clones are small.
			it.refs = maps.Clone(segs)
		}
		if len(segs) > maxSegs {
			maxSegs = len(segs)
		}
		it.maxSegs = maxSegs
		p.Obs.GaugeSet(obs.GaugeRefWindow, int64(len(segs)))
		p.Obs.GaugeAdd(obs.GaugeEmitQueue, 1)
		emitQ <- it
		if it.refs != nil {
			p.Obs.GaugeAdd(obs.GaugeJobQueue, 1)
			jobCh <- it
		}
		for d, last := range lastUse {
			if last <= pos {
				delete(segs, d)
				delete(lastUse, d)
			}
		}
	}
	// Shutdown, on success and on abort alike: close the job channel so the
	// B-frame workers drain and exit, wait for them (so every pending item's
	// done channel is closed — nothing is left for the emitter to block on),
	// then close the emit queue and wait for the emitter to finish draining.
	// No goroutine outlives this function; the leak test pins that.
	close(jobCh)
	wg.Wait()
	close(emitQ)
	<-emitDone
	if emitErr != nil {
		return emitMax, emitErr
	}
	return maxSegs, decErr
}
