package core

import (
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// MaskOut is one emitted segmentation result.
type MaskOut struct {
	Display int
	Type    codec.FrameType
	Mask    *video.Mask
}

// StreamingPipeline is the incremental form of Pipeline: it consumes the
// bitstream through a StreamDecoder and emits each frame's segmentation as
// soon as it can be computed, holding only the reference segmentations
// still needed — the software mirror of the agent unit's bounded queues
// and buffers (Sec IV). Results are emitted in decode order; use
// DisplayOrder to re-sequence them with bounded buffering.
type StreamingPipeline struct {
	NNL    segment.Segmenter
	NNS    *nn.RefineNet
	Refine bool
	// Workers selects the execution mode: <= 1 runs the serial decode loop;
	// > 1 overlaps B-frame reconstruction + refinement with decoding and
	// NN-L inference on that many goroutines, with results re-serialized
	// into decode order. Emitted masks and maxSegs are bit-identical either
	// way.
	Workers int
	// Obs, when non-nil, collects per-stage latency, queue-depth gauges
	// (job queue, emit queue, busy workers, reference window) and span
	// traces. Nil costs one pointer check per site.
	Obs *obs.Collector
}

// pipeline adapts the streaming configuration to the batch Pipeline so the
// two forms share the refiner construction rules.
func (p *StreamingPipeline) pipeline() *Pipeline {
	return &Pipeline{NNL: p.NNL, NNS: p.NNS, Refine: p.Refine, Workers: p.Workers, Obs: p.Obs}
}

// Run decodes the stream incrementally and calls emit for every frame's
// mask, in decode order. A non-nil error from emit aborts the run.
func (p *StreamingPipeline) Run(stream []byte, emit func(MaskOut) error) error {
	_, err := p.RunInstrumented(stream, emit)
	return err
}

// RunInstrumented is Run plus working-set instrumentation; it reports the
// maximum number of reference segmentations held at once.
func (p *StreamingPipeline) RunInstrumented(stream []byte, emit func(MaskOut) error) (maxSegs int, err error) {
	if p.Workers > 1 {
		return p.runInstrumentedParallel(stream, emit)
	}
	dec, err := codec.NewStreamDecoder(stream, codec.DecodeSideInfo)
	if err != nil {
		return 0, fmt.Errorf("core: stream decoder: %w", err)
	}
	dec.SetObserver(p.Obs)
	types := dec.Types()
	lastUse := segLastUse(types, dec.Config())
	segs := make(map[int]*video.Mask)
	w, h := dec.Geometry()
	refiner := p.pipeline().refiner(false)
	pos := -1
	for {
		out, derr := dec.Next()
		if derr != nil {
			return maxSegs, fmt.Errorf("core: decode: %w", derr)
		}
		if out == nil {
			return maxSegs, nil
		}
		pos++
		var mask *video.Mask
		switch out.Info.Type {
		case codec.IFrame, codec.PFrame:
			t0 := p.Obs.Clock()
			mask = p.NNL.Segment(out.Pixels, out.Info.Display)
			p.Obs.Span(obs.StageNNL, out.Info.Display, byte(out.Info.Type), t0)
			segs[out.Info.Display] = mask
		case codec.BFrame:
			t0 := p.Obs.Clock()
			rec, rerr := segment.Reconstruct(out.Info, segs, w, h, dec.Config().BlockSize)
			p.Obs.Span(obs.StageReconstruct, out.Info.Display, byte(out.Info.Type), t0)
			if rerr != nil {
				return maxSegs, fmt.Errorf("core: frame %d: %w", out.Info.Display, rerr)
			}
			if refiner != nil {
				prev, next := flankingAnchors(types, segs, out.Info.Display)
				t1 := p.Obs.Clock()
				mask = refiner.Refine(prev, rec, next)
				p.Obs.Span(obs.StageRefine, out.Info.Display, byte(out.Info.Type), t1)
			} else {
				mask = rec.Binary()
			}
		}
		if len(segs) > maxSegs {
			maxSegs = len(segs)
		}
		p.Obs.GaugeSet(obs.GaugeRefWindow, int64(len(segs)))
		t0 := p.Obs.Clock()
		err := emit(MaskOut{Display: out.Info.Display, Type: out.Info.Type, Mask: mask})
		p.Obs.Span(obs.StageEmit, out.Info.Display, byte(out.Info.Type), t0)
		if err != nil {
			return maxSegs, err
		}
		for d, last := range lastUse {
			if last <= pos {
				delete(segs, d)
				delete(lastUse, d)
			}
		}
	}
}

// segLastUse computes, per anchor display index, the last decode position
// at which its segmentation is still needed (as a motion-vector reference
// candidate or a sandwich flanking channel).
func segLastUse(types []codec.FrameType, cfg codec.Config) map[int]int {
	var anchors []int
	for i, t := range types {
		if t.IsAnchor() {
			anchors = append(anchors, i)
		}
	}
	order := codec.DecodeOrder(types, cfg)
	lastUse := make(map[int]int)
	for pos, disp := range order {
		if types[disp].IsAnchor() {
			if _, ok := lastUse[disp]; !ok {
				lastUse[disp] = pos
			}
			continue
		}
		// Candidate references plus the flanking anchors used by the
		// sandwich input.
		for _, rf := range codec.CandidateRefs(anchors, disp, cfg) {
			if lastUse[rf] < pos {
				lastUse[rf] = pos
			}
		}
		for _, rf := range flankingAnchorIndices(types, disp) {
			if lastUse[rf] < pos {
				lastUse[rf] = pos
			}
		}
	}
	return lastUse
}

// flankingAnchorIndices returns the display indices of the anchors
// immediately before and after d.
func flankingAnchorIndices(types []codec.FrameType, d int) []int {
	var out []int
	for i := d - 1; i >= 0; i-- {
		if types[i].IsAnchor() {
			out = append(out, i)
			break
		}
	}
	for i := d + 1; i < len(types); i++ {
		if types[i].IsAnchor() {
			out = append(out, i)
			break
		}
	}
	return out
}

// DisplayOrder wraps an emit callback so results arrive in display order,
// buffering at most the decoder's natural reordering window.
func DisplayOrder(emit func(MaskOut) error) func(MaskOut) error {
	pending := make(map[int]MaskOut)
	next := 0
	return func(m MaskOut) error {
		pending[m.Display] = m
		for {
			out, ok := pending[next]
			if !ok {
				return nil
			}
			if err := emit(out); err != nil {
				return err
			}
			delete(pending, next)
			next++
		}
	}
}
