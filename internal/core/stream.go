package core

import (
	"context"
	"fmt"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// MaskOut is one emitted segmentation result.
type MaskOut struct {
	Display int
	Type    codec.FrameType
	Mask    *video.Mask
}

// StreamingPipeline is the incremental form of Pipeline: it consumes the
// bitstream through a StreamDecoder and emits each frame's segmentation as
// soon as it can be computed, holding only the reference segmentations
// still needed — the software mirror of the agent unit's bounded queues
// and buffers (Sec IV). Results are emitted in decode order; use
// DisplayOrder to re-sequence them with bounded buffering.
type StreamingPipeline struct {
	NNL segment.Segmenter
	NNS *nn.RefineNet
	// Quant routes NN-S refinement through the int8 execution tier (see
	// Pipeline.Quant).
	Quant  *nn.QuantRefineNet
	Refine bool
	// SkipResidual / SkipThreshold enable residual-driven sparsity (see
	// Pipeline.SkipResidual).
	SkipResidual  bool
	SkipThreshold int
	// Workers selects the execution mode: <= 1 runs the serial decode loop;
	// > 1 overlaps B-frame reconstruction + refinement with decoding and
	// NN-L inference on that many goroutines, with results re-serialized
	// into decode order. Emitted masks and maxSegs are bit-identical either
	// way.
	Workers int
	// MaskSource, when non-nil, is consulted once per non-dropped frame
	// before any of the frame's NN work, with the frame's display index and
	// coded type. A non-nil mask completes the frame without running NN-L
	// (anchors) or MV reconstruction + NN-S (B-frames); anchor masks
	// returned by the source still join the reference window, so later
	// local reconstructions see the state a full compute would have left.
	// The contract is that the source returns exactly the mask the engine
	// would have computed — the serving layer's content-addressed cache
	// guarantees it by keying on the chunk bytes and the models. The frame's
	// bitstream is always decoded first regardless (the entropy coder must
	// advance, and anchor pixels are codec reference state). Consulted by
	// the serial StreamEngine only; the overlapped parallel runner (Workers
	// > 1) computes locally, which is slower but identical.
	MaskSource func(display int, t codec.FrameType) *video.Mask
	// Obs, when non-nil, collects per-stage latency, queue-depth gauges
	// (job queue, emit queue, busy workers, reference window) and span
	// traces. Nil costs one pointer check per site.
	Obs *obs.Collector
}

// SetRefineNet swaps the pipeline's NN-S weights (and, when the pipeline
// serves the int8 tier, their quantized compilation). The swap is
// copy-on-write: engines construct their refiner from these fields at
// NewEngine time (cloning whenever the pipeline is observed or shared), so
// an engine already running — and any batched items in flight through it —
// finishes on the weights it started with, and the new weights take effect
// at the next engine construction. Callers must serialize SetRefineNet with
// NewEngine; the serving layer does so by swapping only at chunk
// boundaries, on the session's worker.
//
// A nil quant clears the int8 tier, reverting the pipeline to float
// refinement — callers promoting adapted weights into a quantized session
// pass the freshly compiled network instead.
func (p *StreamingPipeline) SetRefineNet(net *nn.RefineNet, quant *nn.QuantRefineNet) {
	p.NNS = net
	p.Quant = quant
}

// pipeline adapts the streaming configuration to the batch Pipeline so the
// two forms share the refiner construction rules.
func (p *StreamingPipeline) pipeline() *Pipeline {
	return &Pipeline{
		NNL: p.NNL, NNS: p.NNS, Quant: p.Quant, Refine: p.Refine,
		SkipResidual: p.SkipResidual, SkipThreshold: p.SkipThreshold,
		Workers: p.Workers, Obs: p.Obs,
	}
}

// Run decodes the stream incrementally and calls emit for every frame's
// mask, in decode order. A non-nil error from emit aborts the run.
func (p *StreamingPipeline) Run(stream []byte, emit func(MaskOut) error) error {
	_, err := p.RunInstrumented(stream, emit)
	return err
}

// RunContext is Run with cancellation: the context is checked before every
// frame (serial mode) or every decode step (parallel mode), and a
// cancelled run returns ctx.Err() after draining its goroutines — no
// worker or emitter outlives the call.
func (p *StreamingPipeline) RunContext(ctx context.Context, stream []byte, emit func(MaskOut) error) error {
	_, err := p.RunInstrumentedContext(ctx, stream, emit)
	return err
}

// RunInstrumented is Run plus working-set instrumentation; it reports the
// maximum number of reference segmentations held at once.
func (p *StreamingPipeline) RunInstrumented(stream []byte, emit func(MaskOut) error) (maxSegs int, err error) {
	return p.RunInstrumentedContext(context.Background(), stream, emit)
}

// RunInstrumentedContext is RunInstrumented with cancellation plumbed down
// to the per-frame loop. Frames emitted before the cancellation are a
// prefix of the uncancelled run; in parallel mode, frames already in
// flight when the context fires are still completed and emitted so the
// emitted sequence remains a clean decode-order prefix.
func (p *StreamingPipeline) RunInstrumentedContext(ctx context.Context, stream []byte, emit func(MaskOut) error) (maxSegs int, err error) {
	if p.Workers > 1 {
		return p.runInstrumentedParallel(ctx, stream, emit)
	}
	dec, err := codec.NewStreamDecoder(stream, codec.DecodeSideInfo)
	if err != nil {
		return 0, fmt.Errorf("core: stream decoder: %w", err)
	}
	e := p.NewEngine(dec)
	for {
		mo, err := e.Step(ctx)
		if err != nil {
			return e.MaxSegs(), err
		}
		if mo == nil {
			return e.MaxSegs(), nil
		}
		t0 := p.Obs.Clock()
		err = emit(*mo)
		p.Obs.Span(obs.StageEmit, mo.Display, byte(mo.Type), t0)
		if err != nil {
			return e.MaxSegs(), err
		}
	}
}

// segLastUse computes, per anchor display index, the last decode position
// at which its segmentation is still needed (as a motion-vector reference
// candidate or a sandwich flanking channel).
func segLastUse(types []codec.FrameType, cfg codec.Config) map[int]int {
	var anchors []int
	for i, t := range types {
		if t.IsAnchor() {
			anchors = append(anchors, i)
		}
	}
	order := codec.DecodeOrder(types, cfg)
	lastUse := make(map[int]int)
	for pos, disp := range order {
		if types[disp].IsAnchor() {
			if _, ok := lastUse[disp]; !ok {
				lastUse[disp] = pos
			}
			continue
		}
		// Candidate references plus the flanking anchors used by the
		// sandwich input.
		for _, rf := range codec.CandidateRefs(anchors, disp, cfg) {
			if lastUse[rf] < pos {
				lastUse[rf] = pos
			}
		}
		for _, rf := range flankingAnchorIndices(types, disp) {
			if lastUse[rf] < pos {
				lastUse[rf] = pos
			}
		}
	}
	return lastUse
}

// flankingAnchorIndices returns the display indices of the anchors
// immediately before and after d.
func flankingAnchorIndices(types []codec.FrameType, d int) []int {
	var out []int
	for i := d - 1; i >= 0; i-- {
		if types[i].IsAnchor() {
			out = append(out, i)
			break
		}
	}
	for i := d + 1; i < len(types); i++ {
		if types[i].IsAnchor() {
			out = append(out, i)
			break
		}
	}
	return out
}

// DisplayOrder wraps an emit callback so results arrive in display order,
// buffering at most the decoder's natural reordering window.
func DisplayOrder(emit func(MaskOut) error) func(MaskOut) error {
	pending := make(map[int]MaskOut)
	next := 0
	return func(m MaskOut) error {
		pending[m.Display] = m
		for {
			out, ok := pending[next]
			if !ok {
				return nil
			}
			if err := emit(out); err != nil {
				return err
			}
			delete(pending, next)
			next++
		}
	}
}
