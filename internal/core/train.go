package core

import (
	"fmt"
	"math/rand"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// TrainConfig controls NN-S training.
type TrainConfig struct {
	Features int     // NN-S hidden feature maps
	Epochs   int     // the paper trains for just two epochs
	LR       float64 // Adam learning rate
	Seed     int64
}

// DefaultTrainConfig mirrors the paper's setup: a tiny network trained for
// two epochs.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Features: 8, Epochs: 2, LR: 0.01, Seed: 1}
}

// TrainNNS trains the refinement network exactly as Sec III-B describes:
// the training videos are fully decoded for frame types and B-frame motion
// vectors; the I/P ground truth with the B-frame motion vectors reconstructs
// each B segmentation; the sandwich of (preceding GT, reconstruction,
// following GT) is the input and the B-frame ground truth is the label.
func TrainNNS(videos []*video.Video, enc codec.Config, tc TrainConfig) (*nn.RefineNet, error) {
	rng := rand.New(rand.NewSource(tc.Seed))
	net := nn.NewRefineNet(rng, tc.Features)
	opt := nn.NewAdam(tc.LR)

	type sample struct {
		vid *video.Video
		dec *codec.DecodeResult
		d   int
	}
	var samples []sample
	for _, v := range videos {
		st, err := codec.Encode(v, enc)
		if err != nil {
			return nil, fmt.Errorf("core: encode training video %q: %w", v.Name, err)
		}
		dec, err := codec.Decode(st.Data, codec.DecodeSideInfo)
		if err != nil {
			return nil, fmt.Errorf("core: decode training video %q: %w", v.Name, err)
		}
		for d, ty := range dec.Types {
			if ty == codec.BFrame {
				samples = append(samples, sample{v, dec, d})
			}
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: training set contains no B-frames")
	}

	gtSegs := func(v *video.Video, dec *codec.DecodeResult) map[int]*video.Mask {
		m := make(map[int]*video.Mask)
		for d, ty := range dec.Types {
			if ty.IsAnchor() {
				m[d] = v.Masks[d]
			}
		}
		return m
	}

	for epoch := 0; epoch < tc.Epochs; epoch++ {
		perm := rng.Perm(len(samples))
		for _, si := range perm {
			s := samples[si]
			segs := gtSegs(s.vid, s.dec)
			rec, err := segment.Reconstruct(s.dec.Infos[s.d], segs, s.dec.W, s.dec.H, s.dec.Cfg.BlockSize)
			if err != nil {
				return nil, fmt.Errorf("core: training reconstruction frame %d: %w", s.d, err)
			}
			prev, next := flankingAnchors(s.dec.Types, segs, s.d)
			x := segment.Sandwich(prev, rec, next)
			target := segment.MaskToTensor(s.vid.Masks[s.d])
			logits := net.Forward(x)
			_, grad := nn.BCEWithLogits(logits, target)
			net.Backward(grad)
			opt.Step(net.Params(), net.Grads())
		}
	}
	return net, nil
}

// NNLTrainConfig controls training of the pure-Go NN-L (the FCN that plays
// ROI SegNet's role when no oracle is used).
type NNLTrainConfig struct {
	Width int     // base feature maps of the FCN
	Steps int     // SGD steps (each step is one random frame)
	LR    float64 // Adam learning rate
	Seed  int64
}

// DefaultNNLTrainConfig returns a configuration that converges to a usable
// segmenter on the synthetic suite within seconds.
func DefaultNNLTrainConfig() NNLTrainConfig {
	return NNLTrainConfig{Width: 8, Steps: 250, LR: 0.01, Seed: 1}
}

// TrainNNL trains the fully-convolutional segmentation network on raw
// frames and ground-truth masks, yielding a learned NN-L: together with
// TrainNNS this gives the completely learned pipeline (no oracle anywhere).
func TrainNNL(videos []*video.Video, tc NNLTrainConfig) (*nn.FCN, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("core: NN-L training set is empty")
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	net := nn.NewFCN(rng, 1, tc.Width)
	opt := nn.NewAdam(tc.LR)
	for step := 0; step < tc.Steps; step++ {
		v := videos[rng.Intn(len(videos))]
		d := rng.Intn(v.Len())
		x := segment.FrameToTensor(v.Frames[d])
		target := segment.MaskToTensor(v.Masks[d])
		logits := net.Forward(x)
		_, grad := nn.BCEWithLogits(logits, target)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	return net, nil
}
