package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// requireNoGoroutineLeak runs fn and fails if the process goroutine count
// has not returned to its starting level shortly after — the contract that
// an aborted pipeline run cancels or drains every worker, emitter and
// per-anchor wait it started.
func requireNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStreamingAbortLeaksNoGoroutines(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	oracle := segment.NewOracle("oracle", v.Masks, 0, 0, 1)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	boom := errors.New("boom")
	abortingEmit := func() func(MaskOut) error {
		n := 0
		return func(MaskOut) error {
			n++
			if n == 5 {
				return boom
			}
			return nil
		}
	}
	for _, nw := range []int{1, 4} {
		t.Run("emit-error", func(t *testing.T) {
			requireNoGoroutineLeak(t, func() {
				sp := &StreamingPipeline{NNL: oracle, NNS: nns, Refine: true, Workers: nw}
				if err := sp.Run(stream, abortingEmit()); !errors.Is(err, boom) {
					t.Fatalf("workers=%d: err = %v, want boom", nw, err)
				}
			})
		})
		t.Run("decode-error", func(t *testing.T) {
			requireNoGoroutineLeak(t, func() {
				sp := &StreamingPipeline{NNL: oracle, NNS: nns, Refine: true, Workers: nw}
				// Truncating mid-stream parses the header but fails during
				// frame decode, aborting the run from the decode stage.
				err := sp.Run(stream[:2*len(stream)/3], func(MaskOut) error { return nil })
				if err == nil {
					t.Fatalf("workers=%d: truncated stream must error", nw)
				}
			})
		})
	}
}

func TestBatchParallelAbortLeaksNoGoroutines(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	dec, err := codec.Decode(stream, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	bad := corruptBFrame(t, dec, 0, 9999)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	requireNoGoroutineLeak(t, func() {
		p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), NNS: nns, Refine: true, Workers: 4}
		if _, err := p.runDecoded(context.Background(), bad); err == nil {
			t.Fatal("corrupted reference must error")
		}
	})
}

// corruptBFrame returns a shallow copy of dec whose n-th motion-carrying
// B-frame (in decode order) references a frame that has no segmentation,
// forcing segment.Reconstruct to fail exactly there. Only the doctored
// frame's Infos entry and MVs slice are copied, so trials stay cheap.
func corruptBFrame(t *testing.T, dec *codec.DecodeResult, n, ref int) *codec.DecodeResult {
	t.Helper()
	cp := *dec
	cp.Infos = append([]codec.FrameInfo(nil), dec.Infos...)
	seen := 0
	for _, d := range dec.Order {
		info := cp.Infos[d]
		if info.Type != codec.BFrame || len(info.MVs) == 0 {
			continue
		}
		if seen == n {
			mvs := append([]codec.MotionVector(nil), info.MVs...)
			mvs[0].Ref = ref
			mvs[0].BiRef = false
			cp.Infos[d].MVs = mvs
			return &cp
		}
		seen++
	}
	t.Fatalf("stream has fewer than %d motion-carrying B-frames", n+1)
	return nil
}

// TestPartialStatsIdenticalSerialParallel pins the satellite contract: when
// a B-frame fails to reconstruct, the Stats returned alongside the error
// are the serial decode-order prefix, bit-identical for every worker count
// — regardless of which worker hit the error first in wall time.
func TestPartialStatsIdenticalSerialParallel(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	dec, err := codec.Decode(stream, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	nB := 0
	for _, info := range dec.Infos {
		if info.Type == codec.BFrame && len(info.MVs) > 0 {
			nB++
		}
	}
	if nB < 3 {
		t.Fatalf("test stream has only %d usable B-frames", nB)
	}
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	cases := []struct {
		name string
		fail []int // motion-carrying B-frames (decode order) to corrupt
	}{
		{"first-b", []int{0}},
		{"middle-b", []int{nB / 2}},
		{"last-b", []int{nB - 1}},
		{"two-failures-reports-first", []int{1, nB - 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := dec
			for _, f := range tc.fail {
				bad = corruptBFrame(t, bad, f, 9999)
			}
			build := func(workers int) *Pipeline {
				return &Pipeline{
					NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1),
					NNS: nns, Refine: true, Workers: workers,
				}
			}
			ref, refErr := build(1).runDecoded(context.Background(), bad)
			if refErr == nil || ref == nil {
				t.Fatalf("serial: res=%v err=%v, want partial result + error", ref, refErr)
			}
			if !strings.Contains(refErr.Error(), "missing reference segmentation") {
				t.Fatalf("serial error = %v", refErr)
			}
			for _, nw := range []int{2, 4, 7} {
				got, gotErr := build(nw).runDecoded(context.Background(), bad)
				if gotErr == nil || got == nil {
					t.Fatalf("workers=%d: res=%v err=%v, want partial result + error", nw, got, gotErr)
				}
				if gotErr.Error() != refErr.Error() {
					t.Fatalf("workers=%d error diverges: %q vs serial %q", nw, gotErr, refErr)
				}
				if got.Stats != ref.Stats {
					t.Fatalf("workers=%d partial Stats diverge:\n got %+v\nwant %+v", nw, got.Stats, ref.Stats)
				}
			}
		})
	}
}

// TestPartialStatsDetectionIdentical applies the same contract to the
// detection form of the pipeline.
func TestPartialStatsDetectionIdentical(t *testing.T) {
	v := makeTestVideo(20, 1.2)
	stream := encodeTestVideo(t, v)
	dec, err := codec.Decode(stream, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	bad := corruptBFrame(t, dec, 1, 9999)
	det := &gtBoxDetector{v}
	ref, refErr := (&Pipeline{}).runDetectionDecoded(context.Background(), bad, det)
	if refErr == nil || ref == nil {
		t.Fatalf("serial: res=%v err=%v", ref, refErr)
	}
	for _, nw := range []int{2, 4} {
		got, gotErr := (&Pipeline{Workers: nw}).runDetectionDecoded(context.Background(), bad, det)
		if gotErr == nil || got == nil {
			t.Fatalf("workers=%d: res=%v err=%v", nw, got, gotErr)
		}
		if gotErr.Error() != refErr.Error() {
			t.Fatalf("workers=%d error diverges: %q vs %q", nw, gotErr, refErr)
		}
		if got.Stats != ref.Stats {
			t.Fatalf("workers=%d partial Stats diverge:\n got %+v\nwant %+v", nw, got.Stats, ref.Stats)
		}
	}
}

// TestCancelMidRunLeaksNoGoroutines pins the context-cancellation satellite:
// cancelling a run mid-flight — serial or parallel, streaming or batch —
// returns ctx.Err() and leaves no worker, emitter or anchor-stage goroutine
// behind.
func TestCancelMidRunLeaksNoGoroutines(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	oracle := segment.NewOracle("oracle", v.Masks, 0, 0, 1)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)

	for _, nw := range []int{1, 4} {
		t.Run("streaming", func(t *testing.T) {
			requireNoGoroutineLeak(t, func() {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				// NN-L runs inline on the decode loop in both modes, so
				// cancelling from it guarantees the loop sees the context
				// fire with frames still undelivered.
				sp := &StreamingPipeline{
					NNL: &cancellingSegmenter{Segmenter: oracle, after: 2, cancel: cancel},
					NNS: nns, Refine: true, Workers: nw,
				}
				err := sp.RunContext(ctx, stream, func(MaskOut) error { return nil })
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: err = %v, want context.Canceled", nw, err)
				}
			})
		})
		t.Run("batch-segmentation", func(t *testing.T) {
			requireNoGoroutineLeak(t, func() {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				p := &Pipeline{NNL: &cancellingSegmenter{Segmenter: oracle, after: 2, cancel: cancel},
					NNS: nns, Refine: true, Workers: nw}
				res, err := p.RunSegmentationContext(ctx, stream)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: err = %v, want context.Canceled", nw, err)
				}
				if res == nil {
					t.Fatalf("workers=%d: cancelled run must still return the partial result", nw)
				}
			})
		})
	}
	t.Run("batch-detection", func(t *testing.T) {
		requireNoGoroutineLeak(t, func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			det := &cancellingDetector{inner: &gtBoxDetector{v}, after: 2, cancel: cancel}
			_, err := (&Pipeline{Workers: 4}).RunDetectionContext(ctx, stream, det)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	})
	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, nw := range []int{1, 4} {
			requireNoGoroutineLeak(t, func() {
				sp := &StreamingPipeline{NNL: oracle, NNS: nns, Refine: true, Workers: nw}
				emitted := 0
				err := sp.RunContext(ctx, stream, func(MaskOut) error { emitted++; return nil })
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: err = %v, want context.Canceled", nw, err)
				}
				if emitted != 0 {
					t.Fatalf("workers=%d: pre-cancelled run emitted %d frames", nw, emitted)
				}
			})
		}
	})
}

// cancellingSegmenter cancels the run's context after its n-th anchor.
type cancellingSegmenter struct {
	segment.Segmenter
	after  int
	n      int
	cancel context.CancelFunc
}

func (c *cancellingSegmenter) Segment(f *video.Frame, display int) *video.Mask {
	m := c.Segmenter.Segment(f, display)
	c.n++
	if c.n == c.after {
		c.cancel()
	}
	return m
}

// cancellingDetector cancels the run's context after its n-th anchor.
type cancellingDetector struct {
	inner  BoxDetector
	after  int
	n      int
	cancel context.CancelFunc
}

func (c *cancellingDetector) Detect(f *video.Frame, display int) []detect.Detection {
	d := c.inner.Detect(f, display)
	c.n++
	if c.n == c.after {
		c.cancel()
	}
	return d
}

func (c *cancellingDetector) Name() string { return c.inner.Name() }
