package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// BenchmarkPipelineSegmentation measures the end-to-end segmentation run at
// several worker counts. With workers > 1, NN-L anchor inference overlaps
// B-frame reconstruction + NN-S refinement; on a multi-core host the
// speedup approaches the B-frame share of total work.
func BenchmarkPipelineSegmentation(b *testing.B) {
	v := video.Generate(video.SceneSpec{
		Name: "bench", W: 128, H: 96, Frames: 32, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 20, X: 48, Y: 48,
			VX: 1.5, VY: 0.7, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 8)
	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			b.ReportAllocs()
			p := New(segment.NewOracle("oracle", v.Masks, 0, 0, 1), nns, WithWorkers(nw))
			for i := 0; i < b.N; i++ {
				if _, err := p.RunSegmentation(st.Data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingSegmentation measures the incremental pipeline with the
// same worker sweep; the overlapped mode additionally hides reconstruction
// behind decoding.
func BenchmarkStreamingSegmentation(b *testing.B) {
	v := video.Generate(video.SceneSpec{
		Name: "bench-stream", W: 128, H: 96, Frames: 32, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 20, X: 48, Y: 48,
			VX: 1.5, VY: 0.7, Intensity: 220, Foreground: true,
		}},
	})
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 8)
	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			b.ReportAllocs()
			p := &StreamingPipeline{
				NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1),
				NNS: nns, Refine: true, Workers: nw,
			}
			for i := 0; i < b.N; i++ {
				if err := p.Run(st.Data, func(MaskOut) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
