package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"vrdann/internal/nn"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

// testWorkerCounts exercises the overlapped mode well past the host's core
// count; bit-identity must hold regardless of physical parallelism.
var testWorkerCounts = []int{2, 4, 7}

func maskEqual(a, b *video.Mask) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func TestSegmentationBitIdenticalAcrossWorkers(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	// A noisy oracle plus an (untrained, deterministic) NN-S exercises every
	// stage: NN-L inference, MV reconstruction, sandwich refinement.
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	build := func(workers int) *Pipeline {
		return New(segment.NewOracle("oracle", v.Masks, 0.05, 1, 9), nns, WithWorkers(workers))
	}
	ref, err := build(1).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range testWorkerCounts {
		got, err := build(nw).RunSegmentation(stream)
		if err != nil {
			t.Fatalf("workers=%d: %v", nw, err)
		}
		if got.Stats != ref.Stats {
			t.Fatalf("workers=%d stats diverge: got %+v want %+v", nw, got.Stats, ref.Stats)
		}
		if len(got.Masks) != len(ref.Masks) {
			t.Fatalf("workers=%d mask count %d vs %d", nw, len(got.Masks), len(ref.Masks))
		}
		for d := range ref.Masks {
			if !maskEqual(got.Masks[d], ref.Masks[d]) {
				t.Fatalf("workers=%d frame %d mask differs from serial", nw, d)
			}
		}
		if len(got.Recons) != len(ref.Recons) {
			t.Fatalf("workers=%d recon count %d vs %d", nw, len(got.Recons), len(ref.Recons))
		}
		for d, rr := range ref.Recons {
			gr := got.Recons[d]
			if gr == nil || gr.W != rr.W || gr.H != rr.H {
				t.Fatalf("workers=%d recon %d missing or misshapen", nw, d)
			}
			for i := range rr.Pix {
				if gr.Pix[i] != rr.Pix[i] {
					t.Fatalf("workers=%d recon %d pixel %d differs", nw, d, i)
				}
			}
		}
	}
}

func TestSegmentationWithoutRefineIdenticalAcrossWorkers(t *testing.T) {
	v := makeTestVideo(16, 1.0)
	stream := encodeTestVideo(t, v)
	build := func(workers int) *Pipeline {
		p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), Workers: workers}
		return p
	}
	ref, err := build(0).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := build(4).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != ref.Stats {
		t.Fatalf("stats diverge: got %+v want %+v", got.Stats, ref.Stats)
	}
	for d := range ref.Masks {
		if !maskEqual(got.Masks[d], ref.Masks[d]) {
			t.Fatalf("frame %d mask differs from serial", d)
		}
	}
}

func TestDetectionBitIdenticalAcrossWorkers(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "det-par", W: 96, H: 64, Frames: 20, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 16, X: 36, Y: 32,
			VX: 1.5, VY: 0.7, Intensity: 220, Foreground: true,
		}},
	})
	stream := encodeTestVideo(t, v)
	det := &gtBoxDetector{v}
	ref, err := (&Pipeline{}).RunDetection(stream, det)
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range testWorkerCounts {
		got, err := (&Pipeline{Workers: nw}).RunDetection(stream, det)
		if err != nil {
			t.Fatalf("workers=%d: %v", nw, err)
		}
		if got.Stats != ref.Stats {
			t.Fatalf("workers=%d stats diverge: got %+v want %+v", nw, got.Stats, ref.Stats)
		}
		for d := range ref.Detections {
			rd, gd := ref.Detections[d], got.Detections[d]
			if len(rd) != len(gd) {
				t.Fatalf("workers=%d frame %d has %d detections, want %d", nw, d, len(gd), len(rd))
			}
			for i := range rd {
				if rd[i] != gd[i] {
					t.Fatalf("workers=%d frame %d detection %d: got %+v want %+v", nw, d, i, gd[i], rd[i])
				}
			}
		}
	}
}

func collectStream(t *testing.T, p *StreamingPipeline, stream []byte) (int, []MaskOut) {
	t.Helper()
	var outs []MaskOut
	maxSegs, err := p.RunInstrumented(stream, func(m MaskOut) error {
		outs = append(outs, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return maxSegs, outs
}

func TestStreamingBitIdenticalAcrossWorkers(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	oracle := segment.NewOracle("oracle", v.Masks, 0.05, 1, 9)
	refMax, refOuts := collectStream(t, &StreamingPipeline{NNL: oracle, NNS: nns, Refine: true}, stream)
	for _, nw := range testWorkerCounts {
		gotMax, gotOuts := collectStream(t, &StreamingPipeline{NNL: oracle, NNS: nns, Refine: true, Workers: nw}, stream)
		if gotMax != refMax {
			t.Fatalf("workers=%d maxSegs = %d, want %d", nw, gotMax, refMax)
		}
		if len(gotOuts) != len(refOuts) {
			t.Fatalf("workers=%d emitted %d frames, want %d", nw, len(gotOuts), len(refOuts))
		}
		for i := range refOuts {
			if gotOuts[i].Display != refOuts[i].Display || gotOuts[i].Type != refOuts[i].Type {
				t.Fatalf("workers=%d emit %d is frame %d/%v, want %d/%v",
					nw, i, gotOuts[i].Display, gotOuts[i].Type, refOuts[i].Display, refOuts[i].Type)
			}
			if !maskEqual(gotOuts[i].Mask, refOuts[i].Mask) {
				t.Fatalf("workers=%d frame %d mask differs from serial", nw, gotOuts[i].Display)
			}
		}
	}
}

func TestStreamingParallelEmitErrorAborts(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)
	oracle := segment.NewOracle("oracle", v.Masks, 0, 0, 1)
	boom := errors.New("boom")
	run := func(workers int) (int, int, error) {
		n := 0
		maxSegs, err := (&StreamingPipeline{NNL: oracle, Workers: workers}).RunInstrumented(stream, func(m MaskOut) error {
			if n == 7 {
				return fmt.Errorf("frame %d: %w", m.Display, boom)
			}
			n++
			return nil
		})
		return maxSegs, n, err
	}
	refMax, refN, refErr := run(1)
	if !errors.Is(refErr, boom) {
		t.Fatalf("serial: error = %v, want boom", refErr)
	}
	gotMax, gotN, gotErr := run(4)
	if !errors.Is(gotErr, boom) {
		t.Fatalf("parallel: error = %v, want boom", gotErr)
	}
	if gotErr.Error() != refErr.Error() {
		t.Fatalf("error diverges: %q vs %q", gotErr, refErr)
	}
	if gotN != refN || gotMax != refMax {
		t.Fatalf("parallel emitted %d frames (maxSegs %d), serial %d (%d)", gotN, gotMax, refN, refMax)
	}
}

func TestWithWorkersOption(t *testing.T) {
	p := New(segment.NewOracle("oracle", nil, 0, 0, 1), nil, WithWorkers(3))
	if p.Workers != 3 || p.Refine {
		t.Fatalf("New misconfigured pipeline: %+v", p)
	}
	nns := nn.NewRefineNet(rand.New(rand.NewSource(1)), 4)
	if q := New(nil, nns); !q.Refine {
		t.Fatal("New must enable refinement when NN-S is supplied")
	}
	if (&Pipeline{}).workers() != 1 || (&Pipeline{Workers: -2}).workers() != 1 {
		t.Fatal("zero-value pipeline must resolve to 1 worker")
	}
	if runtime.GOMAXPROCS(0) < 1 {
		t.Fatal("unreachable")
	}
}
