package core

import (
	"context"
	"errors"
	"io"

	"vrdann/internal/codec"
)

// ErrorClass partitions step-API failures by what a serving layer should do
// about them. The taxonomy is the recovery policy: malformed input is the
// client's fault — quarantine the session's decode state and resync on the
// next chunk; cancellation is the server's own shutdown — fail the chunk
// without blaming the stream; an internal invariant violation is a bug —
// surface it loudly and never retry into it.
type ErrorClass int

const (
	// ClassNone classifies a nil error.
	ClassNone ErrorClass = iota
	// ClassMalformed is a corrupt, truncated or otherwise undecodable
	// bitstream: every error wrapping codec.ErrBitstream, plus bare EOF-style
	// reader exhaustion. Recoverable by resynchronizing on the next
	// independently decodable chunk.
	ClassMalformed
	// ClassCanceled is a context cancellation or deadline: the run was
	// stopped from outside, the input is not suspect.
	ClassCanceled
	// ClassInternal is everything else — an engine invariant violated on
	// input that parsed cleanly. Not the stream's fault; not recoverable by
	// resync alone.
	ClassInternal
)

// String returns the class's report name.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassMalformed:
		return "malformed"
	case ClassCanceled:
		return "canceled"
	default:
		return "internal"
	}
}

// Classify maps an error returned by the step API (StreamEngine.Step /
// StepFunc, the pipeline Run variants) onto its ErrorClass. It inspects the
// wrap chain, so callers may have added their own context around the error.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	case errors.Is(err, codec.ErrBitstream),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.EOF):
		return ClassMalformed
	default:
		return ClassInternal
	}
}
