package core

import (
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/detect"
	"vrdann/internal/segment"
	"vrdann/internal/video"
)

func makeTestVideo(frames int, speed float64) *video.Video {
	return video.Generate(video.SceneSpec{
		Name: "core-test", W: 64, H: 48, Frames: frames, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 24, Y: 24,
			VX: speed, VY: speed / 2, Intensity: 220, Foreground: true,
		}},
	})
}

func encodeTestVideo(t *testing.T, v *video.Video) []byte {
	t.Helper()
	st, err := codec.Encode(v, codec.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st.Data
}

func TestPipelineWithoutRefineRunsAllFrames(t *testing.T) {
	v := makeTestVideo(16, 1.5)
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), Refine: false}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Masks) != 16 {
		t.Fatalf("got %d masks", len(res.Masks))
	}
	for d, m := range res.Masks {
		if m == nil {
			t.Fatalf("frame %d has no mask", d)
		}
	}
	if res.Stats.BFrames == 0 || res.Stats.NNLRuns == 0 {
		t.Fatalf("stats look wrong: %+v", res.Stats)
	}
	if res.Stats.NNLRuns != res.Stats.IFrames+res.Stats.PFrames {
		t.Fatal("NN-L must run exactly once per anchor")
	}
	if res.Stats.NNSRuns != 0 {
		t.Fatal("refinement disabled but NN-S ran")
	}
}

func TestPipelineReconstructionQualityWithPerfectNNL(t *testing.T) {
	// With a perfect NN-L and a slow-moving object, pure MV reconstruction
	// should already track the ground truth well on B-frames.
	v := makeTestVideo(20, 1.0)
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1)}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	var score segment.SeqScore
	for d, ty := range res.Decode.Types {
		if ty == codec.BFrame {
			score.Add(res.Masks[d], v.Masks[d])
		}
	}
	_, j := score.Mean()
	if j < 0.75 {
		t.Fatalf("B-frame reconstruction IoU = %.3f, want > 0.75", j)
	}
}

func TestPipelineRefinementImprovesNoisyReconstruction(t *testing.T) {
	// Train NN-S (2 epochs, as in the paper) on the held-out training set,
	// then check refined B-frames beat the raw reconstruction in the regime
	// the network targets: imperfect NN-L references and a deforming object.
	if testing.Short() {
		t.Skip("NN-S training is slow")
	}
	train := video.MakeTrainingSet(64, 48, 16)
	nns, err := TrainNNS(train, codec.DefaultConfig(), TrainConfig{Features: 8, Epochs: 2, LR: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := video.Generate(video.SceneSpec{
		Name: "deform", W: 64, H: 48, Frames: 16, Seed: 55, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 11, X: 28, Y: 24, VX: 1.4, VY: 0.4,
			Deform: 0.25, DeformRate: 0.3, Intensity: 220, Foreground: true,
		}},
	})
	stream := encodeTestVideo(t, v)
	oracle := segment.NewOracle("oracle", v.Masks, 0.06, 2, 1)

	raw := &Pipeline{NNL: oracle, Refine: false}
	ref := &Pipeline{NNL: oracle, NNS: nns, Refine: true}
	rawRes, err := raw.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	var rawScore, refScore segment.SeqScore
	for d, ty := range rawRes.Decode.Types {
		if ty == codec.BFrame {
			rawScore.Add(rawRes.Masks[d], v.Masks[d])
			refScore.Add(refRes.Masks[d], v.Masks[d])
		}
	}
	rawF, rawJ := rawScore.Mean()
	refF, refJ := refScore.Mean()
	t.Logf("raw F=%.4f J=%.4f refined F=%.4f J=%.4f", rawF, rawJ, refF, refJ)
	if refJ+refF < rawJ+rawF {
		t.Fatalf("refinement hurt: raw (F=%.4f, J=%.4f) refined (F=%.4f, J=%.4f)", rawF, rawJ, refF, refJ)
	}
	if refRes.Stats.NNSRuns != refRes.Stats.BFrames {
		t.Fatal("NN-S must run once per B-frame")
	}
}

func TestPipelineAnchorsUseNNLDirectly(t *testing.T) {
	v := makeTestVideo(12, 1.0)
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1)}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	for d, ty := range res.Decode.Types {
		if ty.IsAnchor() {
			if segment.IoU(res.Masks[d], v.Masks[d]) != 1 {
				t.Fatalf("anchor %d mask should be the oracle output", d)
			}
		}
	}
}

func TestPipelineRejectsGarbageStream(t *testing.T) {
	p := &Pipeline{NNL: segment.NewOracle("oracle", nil, 0, 0, 1)}
	if _, err := p.RunSegmentation([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected decode error")
	}
}

// gtBoxDetector returns the ground-truth box with a fixed score.
type gtBoxDetector struct{ v *video.Video }

func (g *gtBoxDetector) Detect(_ *video.Frame, display int) []detect.Detection {
	b := g.v.Boxes[display]
	if b.Empty() {
		return nil
	}
	return []detect.Detection{{Box: b, Score: 0.95}}
}
func (g *gtBoxDetector) Name() string { return "gt" }

func TestRunDetectionTracksObject(t *testing.T) {
	v := video.Generate(video.SceneSpec{
		Name: "det-test", W: 96, H: 64, Frames: 16, Seed: 42, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 16, X: 36, Y: 32,
			VX: 1.5, VY: 0.7, Intensity: 220, Foreground: true,
		}},
	})
	stream := encodeTestVideo(t, v)
	p := &Pipeline{}
	res, err := p.RunDetection(stream, &gtBoxDetector{v})
	if err != nil {
		t.Fatal(err)
	}
	gts := detect.GTBoxes(v)
	ap := detect.AP(res.Detections, gts, 0.5)
	if ap < 0.8 {
		t.Fatalf("detection AP = %.3f, want > 0.8", ap)
	}
	// Every frame must have a detection.
	for d, dets := range res.Detections {
		if len(dets) == 0 {
			t.Fatalf("frame %d has no detection", d)
		}
	}
}

func TestTrainNNSLearns(t *testing.T) {
	train := video.MakeTrainingSet(64, 48, 10)[:2]
	net, err := TrainNNS(train, codec.DefaultConfig(), TrainConfig{Features: 4, Epochs: 1, LR: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if net == nil {
		t.Fatal("nil network")
	}
	// The trained net should roughly reproduce a clean reconstruction.
	m := video.NewMask(64, 48)
	for y := 16; y < 32; y++ {
		for x := 16; x < 32; x++ {
			m.Set(x, y, 1)
		}
	}
	rec := segment.NewReconMask(64, 48)
	for y := 16; y < 32; y++ {
		for x := 16; x < 32; x++ {
			rec.Pix[y*64+x] = segment.ReconWhite
		}
	}
	out := segment.Refine(net, m, rec, m)
	if iou := segment.IoU(out, m); iou < 0.6 {
		t.Fatalf("trained NN-S IoU on clean square = %.3f", iou)
	}
}

func TestTrainNNSRejectsEmptySet(t *testing.T) {
	if _, err := TrainNNS(nil, codec.DefaultConfig(), DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestPipelineSurvivesSceneCut(t *testing.T) {
	// Two unrelated scenes joined by a hard cut: the encoder's I-refresh
	// must keep VR-DANN's B-frame propagation from bleeding across the cut.
	a := video.Generate(video.SceneSpec{
		Name: "cutA", W: 64, H: 48, Frames: 12, Seed: 41, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeDisk, Radius: 10, X: 20, Y: 24, VX: 1, Intensity: 230, Foreground: true,
		}},
	})
	b := video.Generate(video.SceneSpec{
		Name: "cutB", W: 64, H: 48, Frames: 12, Seed: 5150, Noise: 1.5,
		Objects: []video.ObjectSpec{{
			Shape: video.ShapeBox, Radius: 9, X: 44, Y: 20, VX: -0.8, Intensity: 60, Foreground: true,
		}},
	})
	for _, f := range b.Frames {
		for i := range f.Pix {
			if f.Pix[i] > 75 {
				f.Pix[i] -= 75
			}
		}
	}
	v := video.Concat(a, b)
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), Refine: false}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy on the frames right after the cut must stay reasonable.
	var post segment.SeqScore
	for d := 12; d < 16; d++ {
		post.Add(res.Masks[d], v.Masks[d])
	}
	_, j := post.Mean()
	if j < 0.6 {
		t.Fatalf("post-cut IoU %.3f: propagation bled across the cut", j)
	}
}

func TestPipelineUnderOcclusion(t *testing.T) {
	// A non-foreground occluder crosses the object: ground truth excludes
	// occluded pixels, and the pipeline should track the visible part.
	v := video.Generate(video.SceneSpec{
		Name: "occl", W: 96, H: 64, Frames: 20, Seed: 77, Noise: 1.5,
		Objects: []video.ObjectSpec{
			{Shape: video.ShapeDisk, Radius: 13, X: 48, Y: 32, VX: 0.3, Intensity: 220, Foreground: true},
			{Shape: video.ShapeBox, Radius: 8, X: 10, Y: 30, VX: 4, Intensity: 70, Foreground: false},
		},
	})
	stream := encodeTestVideo(t, v)
	p := &Pipeline{NNL: segment.NewOracle("oracle", v.Masks, 0, 0, 1), Refine: false}
	res, err := p.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	var s segment.SeqScore
	for d := range res.Masks {
		s.Add(res.Masks[d], v.Masks[d])
	}
	_, j := s.Mean()
	if j < 0.7 {
		t.Fatalf("occlusion sequence IoU %.3f too low", j)
	}
}
