package core

import (
	"context"
	"math/rand"
	"testing"

	"vrdann/internal/codec"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
)

// quantTestNet builds an untrained-but-deterministic NN-S and its int8
// compilation, calibrated on random sandwich-shaped inputs.
func quantTestNet(t *testing.T, seed int64) (*nn.RefineNet, *nn.QuantRefineNet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewRefineNet(rng, 4)
	var calib []*tensor.Tensor
	for i := 0; i < 3; i++ {
		x := tensor.New(3, 48, 64)
		for j := range x.Data {
			x.Data[j] = float32(rng.Intn(3)) / 2
		}
		calib = append(calib, x)
	}
	q, err := nn.NewQuantRefineNet(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	return net, q
}

// TestResidualSkipBitIdenticalAcrossModes checks the skip path produces the
// same masks from the serial loop, the parallel loop, and the streaming
// engine (the serving layer's unit of scheduling).
func TestResidualSkipBitIdenticalAcrossModes(t *testing.T) {
	v := makeTestVideo(20, 1.5)
	stream := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(11)), 4)
	build := func(workers int) *Pipeline {
		p := New(segment.NewOracle("oracle", v.Masks, 0.05, 1, 9), nns, WithWorkers(workers))
		p.SkipResidual = true
		return p
	}
	ref, err := build(1).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := build(4).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != ref.Stats {
		t.Fatalf("stats diverge: got %+v want %+v", got.Stats, ref.Stats)
	}
	for d := range ref.Masks {
		if !maskEqual(got.Masks[d], ref.Masks[d]) {
			t.Fatalf("workers=4 frame %d mask differs from serial", d)
		}
	}

	// Streaming engine (StepPrepare/Finish — the serving path).
	sp := &StreamingPipeline{
		NNL: segment.NewOracle("oracle", v.Masks, 0.05, 1, 9), NNS: nns,
		Refine: true, SkipResidual: true,
	}
	masks := make(map[int]*video.Mask)
	if err := sp.Run(stream, func(mo MaskOut) error { masks[mo.Display] = mo.Mask; return nil }); err != nil {
		t.Fatal(err)
	}
	for d := range ref.Masks {
		if !maskEqual(masks[d], ref.Masks[d]) {
			t.Fatalf("streaming frame %d mask differs from serial batch run", d)
		}
	}
}

// TestResidualSkipCountsAndRefinesLess checks the skip actually elides NN-S
// work on a low-motion stream and the counters record it.
func TestResidualSkipCountsAndRefinesLess(t *testing.T) {
	v := makeTestVideo(24, 0.4) // slow motion: many bit-exact blocks
	stream := encodeTestVideo(t, v)
	nns := nn.NewRefineNet(rand.New(rand.NewSource(3)), 4)
	base := New(segment.NewOracle("oracle", v.Masks, 0, 0, 1), nns)
	full, err := base.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.New()
	skip := New(segment.NewOracle("oracle", v.Masks, 0, 0, 1), nns, WithObserver(c))
	skip.SkipResidual = true
	skipped, err := skip.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Snapshot()
	sk := rep.Counters[obs.CounterQuantBlocksSkipped.String()]
	dt := rep.Counters[obs.CounterQuantBlocksDirty.String()]
	if sk == 0 {
		t.Fatal("slow-motion stream skipped zero blocks; residual gating is dead")
	}
	if dt == 0 {
		t.Fatal("no dirty blocks at all — suspicious for a moving object")
	}
	if skipped.Stats.NNSRuns > full.Stats.NNSRuns {
		t.Fatalf("skip ran MORE NN-S (%d) than full (%d)", skipped.Stats.NNSRuns, full.Stats.NNSRuns)
	}
	if len(skipped.Masks) != len(full.Masks) {
		t.Fatalf("mask count %d vs %d", len(skipped.Masks), len(full.Masks))
	}
}

// TestQuantPipelineEndToEnd runs the full pipeline on the int8 tier (with
// and without residual skip) and gates the F-score delta against the float
// path at 0.5 points — the tier's accuracy contract.
func TestQuantPipelineEndToEnd(t *testing.T) {
	v := makeTestVideo(24, 1.5)
	stream := encodeTestVideo(t, v)

	// Train a small NN-S on this scene so the F-scores are meaningful.
	nns, err := TrainNNS([]*video.Video{v}, codec.DefaultConfig(), TrainConfig{Features: 4, Epochs: 2, LR: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var calib []*tensor.Tensor
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		x := tensor.New(3, 48, 64)
		for j := range x.Data {
			x.Data[j] = float32(rng.Intn(3)) / 2
		}
		calib = append(calib, x)
	}
	q, err := nn.NewQuantRefineNet(nns, calib)
	if err != nil {
		t.Fatal(err)
	}

	fscore := func(res *Result) float64 {
		s := 0.0
		n := 0
		for d, m := range res.Masks {
			if res.Decode.Types[d] != codec.BFrame {
				continue
			}
			s += segment.PixelFScore(m, v.Masks[d])
			n++
		}
		return s / float64(n)
	}

	oracle := segment.NewOracle("oracle", v.Masks, 0, 0, 1)
	floatRes, err := New(oracle, nns).RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	fFloat := fscore(floatRes)

	qp := New(oracle, nns)
	qp.Quant = q
	quantRes, err := qp.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	fQuant := fscore(quantRes)

	qps := New(oracle, nns)
	qps.Quant = q
	qps.SkipResidual = true
	skipRes, err := qps.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}
	fSkip := fscore(skipRes)

	const gate = 0.005 // 0.5 F-score points
	if fFloat-fQuant > gate {
		t.Fatalf("int8 F-score %.4f vs float %.4f: delta %.4f exceeds gate", fQuant, fFloat, fFloat-fQuant)
	}
	if fFloat-fSkip > gate {
		t.Fatalf("int8+skip F-score %.4f vs float %.4f: delta %.4f exceeds gate", fSkip, fFloat, fFloat-fSkip)
	}
}

// TestQuantStreamingEngine drives the StreamEngine on the quant tier with
// residual skip, checking every frame gets a mask and the streaming output
// matches the batch pipeline run with the same settings.
func TestQuantStreamingEngine(t *testing.T) {
	v := makeTestVideo(18, 1.2)
	stream := encodeTestVideo(t, v)
	nns, q := quantTestNet(t, 21)

	oracle := segment.NewOracle("oracle", v.Masks, 0, 0, 1)
	bp := New(oracle, nns)
	bp.Quant = q
	bp.SkipResidual = true
	ref, err := bp.RunSegmentation(stream)
	if err != nil {
		t.Fatal(err)
	}

	sp := &StreamingPipeline{NNL: oracle, NNS: nns, Quant: q, Refine: true, SkipResidual: true}
	dec, err := codec.NewStreamDecoder(stream, codec.DecodeSideInfo)
	if err != nil {
		t.Fatal(err)
	}
	e := sp.NewEngine(dec)
	got := make(map[int]*video.Mask)
	for {
		mo, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if mo == nil {
			break
		}
		if mo.Mask == nil {
			t.Fatalf("frame %d has no mask", mo.Display)
		}
		got[mo.Display] = mo.Mask
	}
	for d := range ref.Masks {
		if !maskEqual(got[d], ref.Masks[d]) {
			t.Fatalf("frame %d: engine mask differs from batch pipeline", d)
		}
	}
}
