package video

import (
	"math"
	"math/rand"
)

// ShapeKind selects the silhouette of a synthetic object.
type ShapeKind int

// Supported object silhouettes.
const (
	ShapeDisk ShapeKind = iota // circle / deforming blob
	ShapeBox                   // rotating rounded rectangle
)

// ObjectSpec describes one moving object in a synthetic scene.
type ObjectSpec struct {
	Shape      ShapeKind
	Radius     float64 // base radius in pixels
	X, Y       float64 // initial center, in pixels
	VX, VY     float64 // velocity, pixels per frame
	RotRate    float64 // rotation, radians per frame
	Deform     float64 // radial deformation amplitude as a fraction of Radius
	DeformRate float64 // deformation phase advance, radians per frame
	Intensity  uint8   // mean luma of the object
	Foreground bool    // contributes to the ground-truth mask
}

// SceneSpec describes a whole synthetic sequence.
type SceneSpec struct {
	Name       string
	W, H       int
	Frames     int
	Seed       int64
	Noise      float64 // per-pixel Gaussian sensor noise (luma levels)
	PanX, PanY float64 // camera pan, pixels per frame
	// IllumDrift adds a global brightness ramp of this many luma levels per
	// frame (stressing intra refresh and rate control like real exposure
	// changes do).
	IllumDrift float64
	Objects    []ObjectSpec
}

// Generate renders the scene into a Video with exact ground-truth masks and
// boxes. Rendering is fully deterministic for a given spec.
func Generate(spec SceneSpec) *Video {
	rng := rand.New(rand.NewSource(spec.Seed))
	// Background texture parameters: a sum of low-frequency sinusoids gives a
	// smooth, feature-rich surface that is easy for block motion estimation
	// to track under camera pan — the same property natural video has.
	type wave struct {
		fx, fy, phase, amp float64
	}
	waves := make([]wave, 6)
	for i := range waves {
		waves[i] = wave{
			fx:    (rng.Float64()*2 - 1) * 0.09,
			fy:    (rng.Float64()*2 - 1) * 0.09,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   10 + rng.Float64()*14,
		}
	}
	// Per-object deformation harmonics.
	type harmonics struct {
		k     int
		phase float64
	}
	objHarm := make([]harmonics, len(spec.Objects))
	for i := range objHarm {
		objHarm[i] = harmonics{k: 3 + rng.Intn(3), phase: rng.Float64() * 2 * math.Pi}
	}

	v := &Video{Name: spec.Name, FPS: 25}
	objs := make([]ObjectSpec, len(spec.Objects))
	copy(objs, spec.Objects)

	noiseRng := rand.New(rand.NewSource(spec.Seed + 1))
	// owner tracks which object (index+1) is topmost at each pixel, so the
	// ground-truth mask respects occlusion: a foreground pixel covered by a
	// later-drawn occluder is not labeled foreground.
	owner := make([]int16, spec.W*spec.H)
	for t := 0; t < spec.Frames; t++ {
		f := NewFrame(spec.W, spec.H)
		m := NewMask(spec.W, spec.H)
		for i := range owner {
			owner[i] = 0
		}
		panX := spec.PanX * float64(t)
		panY := spec.PanY * float64(t)
		illum := spec.IllumDrift * float64(t)
		for y := 0; y < spec.H; y++ {
			for x := 0; x < spec.W; x++ {
				bg := 120.0 + illum
				fx := float64(x) + panX
				fy := float64(y) + panY
				for _, w := range waves {
					bg += w.amp * math.Sin(w.fx*fx+w.fy*fy+w.phase)
				}
				f.Pix[y*spec.W+x] = clampU8(bg)
			}
		}
		for oi := range objs {
			o := &objs[oi]
			rot := o.RotRate * float64(t)
			defPhase := objHarm[oi].phase + o.DeformRate*float64(t)
			// Effective radius including deformation head-room for the scan
			// bounding box.
			maxR := o.Radius * (1 + o.Deform)
			x0 := int(math.Floor(o.X - maxR - 1))
			x1 := int(math.Ceil(o.X + maxR + 1))
			y0 := int(math.Floor(o.Y - maxR - 1))
			y1 := int(math.Ceil(o.Y + maxR + 1))
			for y := y0; y <= y1; y++ {
				if y < 0 || y >= spec.H {
					continue
				}
				for x := x0; x <= x1; x++ {
					if x < 0 || x >= spec.W {
						continue
					}
					dx := float64(x) - o.X
					dy := float64(y) - o.Y
					if !inside(o, objHarm[oi].k, rot, defPhase, dx, dy) {
						continue
					}
					// Shaded object surface so motion estimation has gradients
					// inside the object too.
					shade := 0.5 + 0.5*math.Sin(0.25*(dx*math.Cos(rot)+dy*math.Sin(rot)))
					f.Pix[y*spec.W+x] = clampU8(float64(o.Intensity) + 30*(shade-0.5) + illum)
					owner[y*spec.W+x] = int16(oi + 1)
				}
			}
			// Advance motion; bounce off the frame borders so the object
			// stays visible for the whole sequence.
			o.X += o.VX
			o.Y += o.VY
			if o.X < maxR && o.VX < 0 || o.X > float64(spec.W)-maxR && o.VX > 0 {
				o.VX = -o.VX
			}
			if o.Y < maxR && o.VY < 0 || o.Y > float64(spec.H)-maxR && o.VY > 0 {
				o.VY = -o.VY
			}
		}
		for i, ow := range owner {
			if ow > 0 && objs[ow-1].Foreground {
				m.Pix[i] = 1
			}
		}
		if spec.Noise > 0 {
			for i := range f.Pix {
				f.Pix[i] = clampU8(float64(f.Pix[i]) + noiseRng.NormFloat64()*spec.Noise)
			}
		}
		v.Frames = append(v.Frames, f)
		v.Masks = append(v.Masks, m)
		v.Boxes = append(v.Boxes, BoundingBox(m))
	}
	return v
}

// inside evaluates the object silhouette at offset (dx, dy) from its center.
func inside(o *ObjectSpec, harmK int, rot, defPhase, dx, dy float64) bool {
	// Rotate into object space.
	c, s := math.Cos(-rot), math.Sin(-rot)
	rx := dx*c - dy*s
	ry := dx*s + dy*c
	switch o.Shape {
	case ShapeBox:
		half := o.Radius
		return math.Abs(rx) <= half && math.Abs(ry) <= half*0.62
	default: // ShapeDisk with radial deformation
		r := math.Hypot(rx, ry)
		if r > o.Radius*(1+o.Deform) {
			return false
		}
		theta := math.Atan2(ry, rx)
		edge := o.Radius * (1 + o.Deform*math.Sin(float64(harmK)*theta+defPhase))
		return r <= edge
	}
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
