package video

import "math"

// SeqProfile captures the motion character of one benchmark sequence. The
// twenty profiles below mirror the DAVIS-2016 validation sequences the
// paper plots in Fig 9 and Fig 12: each gets a qualitative speed and
// deformation signature (e.g. "parkour" is very fast, "bmx-trees",
// "breakdance" and "motocross-jump" deform dramatically, "cows" is slow and
// rigid).
type SeqProfile struct {
	Name   string
	Speed  float64 // object speed in pixels/frame at the reference 96-px height
	Deform float64 // radial deformation amplitude (fraction of radius)
	Rot    float64 // rotation rad/frame
	Pan    float64 // camera pan px/frame
	NObj   int     // number of foreground objects
	Seed   int64
}

// SuiteProfiles lists the 20 DAVIS-like benchmark sequences.
var SuiteProfiles = []SeqProfile{
	{Name: "blackswan", Speed: 0.4, Deform: 0.06, Rot: 0.00, Pan: 0.2, NObj: 1, Seed: 101},
	{Name: "bmx-trees", Speed: 2.6, Deform: 0.30, Rot: 0.05, Pan: 0.8, NObj: 1, Seed: 102},
	{Name: "breakdance", Speed: 2.2, Deform: 0.34, Rot: 0.16, Pan: 0.0, NObj: 1, Seed: 103},
	{Name: "camel", Speed: 0.6, Deform: 0.08, Rot: 0.00, Pan: 0.3, NObj: 1, Seed: 104},
	{Name: "car-roundabout", Speed: 1.8, Deform: 0.02, Rot: 0.04, Pan: 0.0, NObj: 1, Seed: 105},
	{Name: "car-shadow", Speed: 1.2, Deform: 0.02, Rot: 0.00, Pan: 0.4, NObj: 1, Seed: 106},
	{Name: "cows", Speed: 0.3, Deform: 0.05, Rot: 0.00, Pan: 0.1, NObj: 1, Seed: 107},
	{Name: "dance-twirl", Speed: 1.6, Deform: 0.26, Rot: 0.22, Pan: 0.0, NObj: 1, Seed: 108},
	{Name: "dog", Speed: 1.4, Deform: 0.14, Rot: 0.02, Pan: 0.5, NObj: 1, Seed: 109},
	{Name: "drift-chicane", Speed: 2.8, Deform: 0.03, Rot: 0.08, Pan: 1.0, NObj: 1, Seed: 110},
	{Name: "drift-straight", Speed: 3.0, Deform: 0.03, Rot: 0.02, Pan: 1.2, NObj: 1, Seed: 111},
	{Name: "goat", Speed: 0.8, Deform: 0.10, Rot: 0.01, Pan: 0.3, NObj: 1, Seed: 112},
	{Name: "horsejump-high", Speed: 2.0, Deform: 0.18, Rot: 0.05, Pan: 0.6, NObj: 1, Seed: 113},
	{Name: "kite-surf", Speed: 1.9, Deform: 0.12, Rot: 0.06, Pan: 0.7, NObj: 2, Seed: 114},
	{Name: "libby", Speed: 2.4, Deform: 0.20, Rot: 0.03, Pan: 0.9, NObj: 1, Seed: 115},
	{Name: "motocross-jump", Speed: 3.2, Deform: 0.28, Rot: 0.10, Pan: 1.1, NObj: 1, Seed: 116},
	{Name: "paragliding-launch", Speed: 0.9, Deform: 0.10, Rot: 0.01, Pan: 0.4, NObj: 2, Seed: 117},
	{Name: "parkour", Speed: 4.2, Deform: 0.22, Rot: 0.06, Pan: 1.4, NObj: 1, Seed: 118},
	{Name: "scooter-black", Speed: 1.5, Deform: 0.06, Rot: 0.02, Pan: 0.5, NObj: 1, Seed: 119},
	{Name: "soapbox", Speed: 1.3, Deform: 0.08, Rot: 0.02, Pan: 0.5, NObj: 1, Seed: 120},
}

// MakeSequence renders one suite sequence at the requested resolution and
// length. Speeds scale with resolution so the motion character (in
// object-sizes per frame) is resolution independent.
func MakeSequence(p SeqProfile, w, h, frames int) *Video {
	scale := float64(h) / 96.0
	r := 0.17 * float64(h)
	spec := SceneSpec{
		Name: p.Name, W: w, H: h, Frames: frames, Seed: p.Seed,
		Noise: 2.0, PanX: p.Pan * scale, PanY: 0.15 * p.Pan * scale,
	}
	for i := 0; i < p.NObj; i++ {
		ang := 0.7 + 1.9*float64(i)
		radius := r * (1 - 0.35*float64(i))
		spec.Objects = append(spec.Objects, ObjectSpec{
			Shape:      ShapeDisk,
			Radius:     radius,
			X:          float64(w) * (0.3 + 0.35*float64(i)),
			Y:          float64(h) * (0.45 + 0.1*float64(i)),
			VX:         p.Speed * scale * math.Cos(ang),
			VY:         p.Speed * scale * 0.5 * math.Sin(ang),
			RotRate:    p.Rot,
			Deform:     p.Deform,
			DeformRate: 0.25,
			Intensity:  uint8(200 - 40*i),
			Foreground: true,
		})
	}
	return Generate(spec)
}

// MakeSuite renders the full 20-sequence benchmark suite.
func MakeSuite(w, h, frames int) []*Video {
	out := make([]*Video, 0, len(SuiteProfiles))
	for _, p := range SuiteProfiles {
		out = append(out, MakeSequence(p, w, h, frames))
	}
	return out
}

// SpeedClass groups detection sequences by object speed, mirroring the
// fast/medium/slow split of Fig 11.
type SpeedClass int

// Speed classes.
const (
	SpeedSlow SpeedClass = iota
	SpeedMedium
	SpeedFast
)

func (s SpeedClass) String() string {
	switch s {
	case SpeedSlow:
		return "slow"
	case SpeedMedium:
		return "medium"
	case SpeedFast:
		return "fast"
	default:
		return "unknown"
	}
}

// ClassOf buckets a profile speed (at the 96-px reference height) into a
// speed class: <1 px/frame slow, <2.2 medium, else fast.
func ClassOf(speed float64) SpeedClass {
	switch {
	case speed < 1.0:
		return SpeedSlow
	case speed < 2.2:
		return SpeedMedium
	default:
		return SpeedFast
	}
}

// DetectionProfiles lists the VID-like detection sequences with their speed
// classes (4 per class).
var DetectionProfiles = []SeqProfile{
	{Name: "vid-slow-1", Speed: 0.3, Deform: 0.04, Rot: 0.00, Pan: 0.1, NObj: 1, Seed: 201},
	{Name: "vid-slow-2", Speed: 0.5, Deform: 0.06, Rot: 0.01, Pan: 0.2, NObj: 1, Seed: 202},
	{Name: "vid-slow-3", Speed: 0.7, Deform: 0.05, Rot: 0.00, Pan: 0.2, NObj: 1, Seed: 203},
	{Name: "vid-slow-4", Speed: 0.9, Deform: 0.08, Rot: 0.01, Pan: 0.3, NObj: 1, Seed: 204},
	{Name: "vid-med-1", Speed: 1.2, Deform: 0.08, Rot: 0.02, Pan: 0.4, NObj: 1, Seed: 205},
	{Name: "vid-med-2", Speed: 1.5, Deform: 0.10, Rot: 0.02, Pan: 0.5, NObj: 1, Seed: 206},
	{Name: "vid-med-3", Speed: 1.8, Deform: 0.12, Rot: 0.03, Pan: 0.5, NObj: 1, Seed: 207},
	{Name: "vid-med-4", Speed: 2.1, Deform: 0.10, Rot: 0.03, Pan: 0.6, NObj: 1, Seed: 208},
	{Name: "vid-fast-1", Speed: 2.6, Deform: 0.14, Rot: 0.05, Pan: 0.8, NObj: 1, Seed: 209},
	{Name: "vid-fast-2", Speed: 3.2, Deform: 0.16, Rot: 0.06, Pan: 1.0, NObj: 1, Seed: 210},
	{Name: "vid-fast-3", Speed: 3.8, Deform: 0.18, Rot: 0.06, Pan: 1.2, NObj: 1, Seed: 211},
	{Name: "vid-fast-4", Speed: 4.4, Deform: 0.20, Rot: 0.08, Pan: 1.4, NObj: 1, Seed: 212},
}

// MakeDetectionSuite renders the detection sequences.
func MakeDetectionSuite(w, h, frames int) []*Video {
	out := make([]*Video, 0, len(DetectionProfiles))
	for _, p := range DetectionProfiles {
		out = append(out, MakeSequence(p, w, h, frames))
	}
	return out
}

// TrainingProfiles lists held-out sequences used only to train NN-S and
// NN-L (disjoint seeds and parameters from the evaluation suites).
var TrainingProfiles = []SeqProfile{
	{Name: "train-1", Speed: 0.5, Deform: 0.05, Rot: 0.01, Pan: 0.2, NObj: 1, Seed: 301},
	{Name: "train-2", Speed: 1.1, Deform: 0.12, Rot: 0.03, Pan: 0.4, NObj: 1, Seed: 302},
	{Name: "train-3", Speed: 1.7, Deform: 0.18, Rot: 0.05, Pan: 0.6, NObj: 1, Seed: 303},
	{Name: "train-4", Speed: 2.4, Deform: 0.25, Rot: 0.08, Pan: 0.9, NObj: 1, Seed: 304},
	{Name: "train-5", Speed: 3.4, Deform: 0.15, Rot: 0.04, Pan: 1.2, NObj: 2, Seed: 305},
	{Name: "train-6", Speed: 0.8, Deform: 0.30, Rot: 0.12, Pan: 0.1, NObj: 1, Seed: 306},
}

// MakeTrainingSet renders the training sequences.
func MakeTrainingSet(w, h, frames int) []*Video {
	out := make([]*Video, 0, len(TrainingProfiles))
	for _, p := range TrainingProfiles {
		out = append(out, MakeSequence(p, w, h, frames))
	}
	return out
}
