// Package video provides raw-frame types, ground-truth annotations and a
// deterministic synthetic video generator. The generator substitutes for
// the DAVIS and ImageNet-VID datasets used by the paper: it produces
// temporally coherent sequences of moving, rotating and deforming objects
// over textured backgrounds together with exact per-frame segmentation
// masks and bounding boxes.
package video

import "fmt"

// Frame is a single raw luma (8-bit grayscale) image. The paper's pipeline
// treats pixels as 24-bit color; using luma only changes per-pixel byte
// counts, which the architecture simulator parameterizes separately, not
// the tempo-spatial structure the codec and recognition pipelines exploit.
type Frame struct {
	W, H int
	Pix  []uint8 // row-major, len == W*H
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); coordinates outside the frame read as 0.
func (f *Frame) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return 0
	}
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at (x, y); out-of-frame writes are ignored.
func (f *Frame) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := NewFrame(f.W, f.H)
	copy(c.Pix, f.Pix)
	return c
}

// Mask is a binary per-pixel segmentation: 1 = object, 0 = background.
type Mask struct {
	W, H int
	Pix  []uint8
}

// NewMask allocates an all-background mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the mask value at (x, y); out-of-mask reads are background.
func (m *Mask) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set writes the mask value at (x, y); out-of-mask writes are ignored.
func (m *Mask) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = v
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	c := NewMask(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Area returns the number of foreground pixels.
func (m *Mask) Area() int {
	n := 0
	for _, v := range m.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// Rect is an axis-aligned bounding box with inclusive min and exclusive max
// coordinates.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rectangle encloses no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Area returns the number of pixels the rectangle covers.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// Intersect returns the intersection of two rectangles.
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{max(r.X0, o.X0), max(r.Y0, o.Y0), min(r.X1, o.X1), min(r.Y1, o.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// IoU returns the intersection-over-union of two rectangles.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	union := r.Area() + o.Area() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Center returns the rectangle's center point.
func (r Rect) Center() (float64, float64) {
	return float64(r.X0+r.X1) / 2, float64(r.Y0+r.Y1) / 2
}

// Shift translates the rectangle by (dx, dy).
func (r Rect) Shift(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// BoundingBox computes the tight bounding box of a mask's foreground; it
// returns the zero Rect when the mask is empty.
func BoundingBox(m *Mask) Rect {
	x0, y0, x1, y1 := m.W, m.H, 0, 0
	found := false
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Pix[y*m.W+x] != 0 {
				found = true
				if x < x0 {
					x0 = x
				}
				if y < y0 {
					y0 = y
				}
				if x >= x1 {
					x1 = x + 1
				}
				if y >= y1 {
					y1 = y + 1
				}
			}
		}
	}
	if !found {
		return Rect{}
	}
	return Rect{x0, y0, x1, y1}
}

// Video is a raw sequence with ground-truth annotations.
type Video struct {
	Name   string
	Frames []*Frame
	Masks  []*Mask // ground-truth segmentation per frame
	Boxes  []Rect  // ground-truth detection box per frame (primary object)
	FPS    int
}

// Len returns the number of frames.
func (v *Video) Len() int { return len(v.Frames) }

// Concat joins two sequences of identical geometry into one — the standard
// way to build a scene-cut stress input (play one scene, hard-cut to
// another). Ground truth concatenates along.
func Concat(a, b *Video) *Video {
	out := &Video{Name: a.Name + "+" + b.Name, FPS: a.FPS}
	out.Frames = append(append([]*Frame{}, a.Frames...), b.Frames...)
	out.Masks = append(append([]*Mask{}, a.Masks...), b.Masks...)
	out.Boxes = append(append([]Rect{}, a.Boxes...), b.Boxes...)
	return out
}
