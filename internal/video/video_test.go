package video

import (
	"testing"
	"testing/quick"
)

func TestFrameAtSetBounds(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(1, 2, 9)
	if f.At(1, 2) != 9 {
		t.Fatalf("At = %d", f.At(1, 2))
	}
	if f.At(-1, 0) != 0 || f.At(4, 0) != 0 || f.At(0, 3) != 0 {
		t.Fatal("out-of-bounds reads must be 0")
	}
	f.Set(-1, -1, 7) // must not panic
}

func TestMaskAreaAndClone(t *testing.T) {
	m := NewMask(3, 3)
	m.Set(0, 0, 1)
	m.Set(2, 2, 1)
	if m.Area() != 2 {
		t.Fatalf("Area = %d", m.Area())
	}
	c := m.Clone()
	c.Set(1, 1, 1)
	if m.Area() != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestRectGeometry(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if a.Area() != 100 {
		t.Fatalf("Area = %d", a.Area())
	}
	inter := a.Intersect(b)
	if inter.Area() != 25 {
		t.Fatalf("Intersect area = %d", inter.Area())
	}
	iou := a.IoU(b)
	if want := 25.0 / 175.0; iou != want {
		t.Fatalf("IoU = %v, want %v", iou, want)
	}
	if !a.Intersect(Rect{20, 20, 30, 30}).Empty() {
		t.Fatal("disjoint rectangles must intersect empty")
	}
}

func TestRectIoUProperties(t *testing.T) {
	f := func(x0, y0, w1, h1, dx, dy, w2, h2 uint8) bool {
		a := Rect{int(x0), int(y0), int(x0) + int(w1%32) + 1, int(y0) + int(h1%32) + 1}
		b := Rect{int(x0) + int(dx%16), int(y0) + int(dy%16), int(x0) + int(dx%16) + int(w2%32) + 1, int(y0) + int(dy%16) + int(h2%32) + 1}
		iou := a.IoU(b)
		if iou < 0 || iou > 1 {
			return false
		}
		// Symmetry and self-identity.
		return a.IoU(b) == b.IoU(a) && a.IoU(a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundingBoxMatchesMask(t *testing.T) {
	m := NewMask(10, 8)
	m.Set(2, 3, 1)
	m.Set(7, 5, 1)
	bb := BoundingBox(m)
	if bb != (Rect{2, 3, 8, 6}) {
		t.Fatalf("BoundingBox = %v", bb)
	}
	if !BoundingBox(NewMask(4, 4)).Empty() {
		t.Fatal("empty mask must give empty box")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := SceneSpec{Name: "x", W: 32, H: 24, Frames: 3, Seed: 5, Objects: []ObjectSpec{
		{Shape: ShapeDisk, Radius: 6, X: 16, Y: 12, VX: 1, Intensity: 220, Foreground: true},
	}}
	a := Generate(spec)
	b := Generate(spec)
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatalf("frame %d pixel %d differs between runs", i, j)
			}
		}
	}
}

func TestGenerateGroundTruthConsistent(t *testing.T) {
	spec := SceneSpec{Name: "x", W: 48, H: 32, Frames: 5, Seed: 9, Objects: []ObjectSpec{
		{Shape: ShapeDisk, Radius: 7, X: 20, Y: 16, VX: 2, VY: 0.5, Intensity: 230, Foreground: true},
	}}
	v := Generate(spec)
	if v.Len() != 5 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i, m := range v.Masks {
		area := m.Area()
		if area == 0 {
			t.Fatalf("frame %d: empty mask", i)
		}
		bb := v.Boxes[i]
		if bb.Empty() {
			t.Fatalf("frame %d: empty box", i)
		}
		// Every mask pixel is inside the box.
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				if m.At(x, y) == 1 && (x < bb.X0 || x >= bb.X1 || y < bb.Y0 || y >= bb.Y1) {
					t.Fatalf("frame %d: mask pixel (%d,%d) outside box %v", i, x, y, bb)
				}
			}
		}
	}
}

func TestObjectMoves(t *testing.T) {
	spec := SceneSpec{Name: "x", W: 64, H: 48, Frames: 8, Seed: 3, Objects: []ObjectSpec{
		{Shape: ShapeDisk, Radius: 8, X: 20, Y: 24, VX: 3, Intensity: 230, Foreground: true},
	}}
	v := Generate(spec)
	c0, _ := v.Boxes[0].Center()
	c7, _ := v.Boxes[7].Center()
	if c7-c0 < 15 {
		t.Fatalf("object moved only %.1f px, want ~21", c7-c0)
	}
}

func TestObjectBouncesOffWalls(t *testing.T) {
	spec := SceneSpec{Name: "x", W: 40, H: 40, Frames: 60, Seed: 4, Objects: []ObjectSpec{
		{Shape: ShapeDisk, Radius: 6, X: 20, Y: 20, VX: 4, VY: 3, Intensity: 220, Foreground: true},
	}}
	v := Generate(spec)
	for i, m := range v.Masks {
		if m.Area() < 20 {
			t.Fatalf("frame %d: object nearly left frame (area %d)", i, m.Area())
		}
	}
}

func TestBoxShapeRendered(t *testing.T) {
	spec := SceneSpec{Name: "x", W: 40, H: 40, Frames: 1, Seed: 4, Objects: []ObjectSpec{
		{Shape: ShapeBox, Radius: 8, X: 20, Y: 20, Intensity: 240, Foreground: true},
	}}
	v := Generate(spec)
	// A box of half-width 8 and half-height ~5 has area close to 16*10.
	area := v.Masks[0].Area()
	if area < 120 || area > 200 {
		t.Fatalf("box area = %d, want roughly 160", area)
	}
}

func TestMakeSuiteNamesAndSizes(t *testing.T) {
	suite := MakeSuite(48, 32, 4)
	if len(suite) != 20 {
		t.Fatalf("suite size = %d, want 20", len(suite))
	}
	seen := map[string]bool{}
	for _, v := range suite {
		if seen[v.Name] {
			t.Fatalf("duplicate sequence name %q", v.Name)
		}
		seen[v.Name] = true
		if v.Len() != 4 || v.Frames[0].W != 48 {
			t.Fatalf("sequence %q wrong size", v.Name)
		}
	}
	if !seen["parkour"] || !seen["cows"] || !seen["bmx-trees"] {
		t.Fatal("expected canonical sequence names")
	}
}

func TestSpeedClasses(t *testing.T) {
	if ClassOf(0.5) != SpeedSlow || ClassOf(1.5) != SpeedMedium || ClassOf(3.0) != SpeedFast {
		t.Fatal("speed class thresholds wrong")
	}
	counts := map[SpeedClass]int{}
	for _, p := range DetectionProfiles {
		counts[ClassOf(p.Speed)]++
	}
	if counts[SpeedSlow] != 4 || counts[SpeedMedium] != 4 || counts[SpeedFast] != 4 {
		t.Fatalf("detection suite class balance = %v", counts)
	}
}

func TestTrainingSetDisjointSeeds(t *testing.T) {
	seeds := map[int64]bool{}
	for _, p := range SuiteProfiles {
		seeds[p.Seed] = true
	}
	for _, p := range DetectionProfiles {
		if seeds[p.Seed] {
			t.Fatalf("detection seed %d collides with suite", p.Seed)
		}
		seeds[p.Seed] = true
	}
	for _, p := range TrainingProfiles {
		if seeds[p.Seed] {
			t.Fatalf("training seed %d collides with evaluation", p.Seed)
		}
	}
}

func TestOcclusionExcludedFromMask(t *testing.T) {
	// A non-foreground occluder drawn after the foreground object must
	// remove the covered pixels from the ground-truth mask.
	spec := SceneSpec{Name: "occ", W: 48, H: 32, Frames: 1, Seed: 5, Objects: []ObjectSpec{
		{Shape: ShapeDisk, Radius: 8, X: 24, Y: 16, Intensity: 220, Foreground: true},
		{Shape: ShapeBox, Radius: 5, X: 24, Y: 16, Intensity: 60, Foreground: false},
	}}
	v := Generate(spec)
	if v.Masks[0].At(24, 16) != 0 {
		t.Fatal("occluded center still labeled foreground")
	}
	if v.Masks[0].At(24, 9) != 1 {
		t.Fatal("unoccluded rim lost")
	}
}

func TestOcclusionOrderMatters(t *testing.T) {
	// Reversed draw order: the foreground object on top keeps its pixels.
	spec := SceneSpec{Name: "occ2", W: 48, H: 32, Frames: 1, Seed: 5, Objects: []ObjectSpec{
		{Shape: ShapeBox, Radius: 5, X: 24, Y: 16, Intensity: 60, Foreground: false},
		{Shape: ShapeDisk, Radius: 8, X: 24, Y: 16, Intensity: 220, Foreground: true},
	}}
	v := Generate(spec)
	if v.Masks[0].At(24, 16) != 1 {
		t.Fatal("top foreground object lost its pixels")
	}
}

func TestIlluminationDrift(t *testing.T) {
	spec := SceneSpec{Name: "illum", W: 32, H: 32, Frames: 10, Seed: 7, IllumDrift: 5,
		Objects: []ObjectSpec{{Shape: ShapeDisk, Radius: 5, X: 16, Y: 16, Intensity: 100, Foreground: true}}}
	v := Generate(spec)
	var m0, m9 float64
	for _, p := range v.Frames[0].Pix {
		m0 += float64(p)
	}
	for _, p := range v.Frames[9].Pix {
		m9 += float64(p)
	}
	n := float64(len(v.Frames[0].Pix))
	if (m9-m0)/n < 30 {
		t.Fatalf("illumination drift too small: %.1f levels over 9 frames", (m9-m0)/n)
	}
}
