// Per-figure benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation. Each benchmark regenerates the corresponding
// result on the full 20-sequence suite and reports the headline quantity
// via b.ReportMetric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation section. The expensive shared artifacts (rendered suites,
// encoded streams, trained NN-S) are cached in a process-wide harness.
package vrdann_test

import (
	"sync"
	"testing"

	"vrdann/internal/experiments"
)

var (
	benchOnce    sync.Once
	benchHarness *experiments.Harness
)

func harness() *experiments.Harness {
	benchOnce.Do(func() {
		benchHarness = experiments.New(experiments.Default())
	})
	return benchHarness
}

func BenchmarkFig3aBFrameRatio(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		_, mean, err := h.Fig3a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*mean, "B-ratio-%")
	}
}

func BenchmarkFig3bReferenceFrames(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		_, maxRefs, err := h.Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(maxRefs), "max-refs")
	}
}

func BenchmarkFig9PerVideoAccuracy(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		var favJ, vrdJ float64
		for _, r := range rows {
			favJ += r.FavosJ
			vrdJ += r.VrdJ
		}
		n := float64(len(rows))
		b.ReportMetric(100*favJ/n, "FAVOS-J-%")
		b.ReportMetric(100*vrdJ/n, "VRDANN-J-%")
	}
}

func BenchmarkFig10AverageAccuracy(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "VR-DANN" {
				b.ReportMetric(100*r.F, "F-%")
				b.ReportMetric(100*r.J, "J-%")
			}
		}
	}
}

func BenchmarkFig11DetectionMAP(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "VR-DANN" {
				b.ReportMetric(100*r.Overall, "mAP-%")
			}
		}
	}
}

func BenchmarkFig12PerVideoCycles(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var par float64
		for _, r := range rows {
			par += r.ParallelNorm
		}
		b.ReportMetric(float64(len(rows))/par, "parallel-speedup-x")
	}
}

func BenchmarkFig13PerfEnergy(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme.String() == "VR-DANN-parallel" {
				b.ReportMetric(r.Speedup, "speedup-x")
				b.ReportMetric(1/r.EnergyNorm, "energy-reduction-x")
			}
		}
	}
}

func BenchmarkFig14DRAMBreakdown(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme.String() == "VR-DANN-parallel" {
				b.ReportMetric(r.Total, "dram-vs-favos")
			}
		}
	}
}

func BenchmarkFig15BRatioSweep(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "settings")
	}
}

func BenchmarkFig16SearchIntervalSweep(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "settings")
	}
}

func BenchmarkFig17EncodingStandard(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		// H.265-like blocks should not lose to H.264-like ones.
		if rows[1].J+0.03 < rows[0].J {
			b.Fatalf("H.265-like worse than H.264-like: %+v", rows)
		}
		b.ReportMetric(100*(rows[1].J-rows[0].J), "h265-J-gain-%")
	}
}

func BenchmarkTableIIConfig(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		if h.TableII() == "" {
			b.Fatal("empty Table II")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		hl, err := h.Headline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(hl.SpeedupVsFAVOS, "speedup-vs-FAVOS-x")
		b.ReportMetric(hl.VRDANNFPS, "fps")
	}
}

func BenchmarkAblationCoalescing(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.AblationCoalescing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].TotalNS/rows[0].TotalNS, "uncoalesced-slowdown-x")
	}
}

func BenchmarkAblationLaggedSwitching(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.AblationLaggedSwitching()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].Switches)/float64(rows[0].Switches), "eager-switch-ratio")
	}
}

func BenchmarkAblationTmpBuffers(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.AblationTmpB()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "settings")
	}
}

func BenchmarkAblationRefinement(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		wf, wj, of, oj, err := h.AblationRefinement()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(wf-of), "refine-F-gain-%")
		b.ReportMetric(100*(wj-oj), "refine-J-gain-%")
	}
}

func BenchmarkRealtime(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Realtime()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme.String() == "VR-DANN-parallel" {
				b.ReportMetric(r.SustainedFPS, "sustained-fps")
			}
		}
	}
}

func BenchmarkDSE(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.DSE()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "design-points")
	}
}

func BenchmarkAblationInt8(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		ff, _, qf, _, err := h.AblationInt8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(ff-qf), "int8-F-loss-%")
	}
}
