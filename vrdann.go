// Package vrdann is a full-system reproduction of "VR-DANN: Real-Time Video
// Recognition via Decoder-Assisted Neural Network Acceleration" (Song et
// al., MICRO 2020).
//
// VR-DANN couples a video decoder with an NN accelerator: I/P-frames are
// segmented by a large network (NN-L) while B-frames — the majority of a
// compressed stream — are reconstructed from the motion vectors already in
// the bitstream and refined by a tiny 3-layer network (NN-S). The package
// bundles everything the paper's evaluation needs, implemented from
// scratch on the standard library:
//
//   - an H.264/H.265-style video codec with I/P/B GOPs, motion estimation
//     and a motion-vector side channel (internal/codec)
//   - a trainable CNN framework (internal/nn, internal/tensor)
//   - a synthetic-video substrate with exact ground truth (internal/video)
//   - the VR-DANN algorithm for segmentation and detection (internal/core,
//     internal/segment, internal/detect)
//   - the baselines OSVOS, FAVOS, DFF, Euphrates and SELSA
//     (internal/baseline, internal/flow)
//   - a cycle-level SoC simulator of the VR-DANN-parallel architecture:
//     NPU, DRAM, decoder and agent unit (internal/sim)
//
// This file is the public facade: the types below alias the internal
// implementation so downstream users program against package vrdann alone.
//
// Quick start:
//
//	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[0], 96, 64, 48)
//	stream, _ := vrdann.Encode(vid, vrdann.DefaultEncoderConfig())
//	nns, _ := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 32), vrdann.DefaultEncoderConfig(), vrdann.DefaultTrainConfig())
//	p := vrdann.NewPipeline(vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.08, 2, 1), nns)
//	res, _ := p.RunSegmentation(stream.Data)
//	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
package vrdann

import (
	"io"

	"vrdann/internal/adapt"
	"vrdann/internal/baseline"
	"vrdann/internal/batch"
	"vrdann/internal/codec"
	"vrdann/internal/contentcache"
	"vrdann/internal/core"
	"vrdann/internal/detect"
	"vrdann/internal/nn"
	"vrdann/internal/obs"
	"vrdann/internal/segment"
	"vrdann/internal/serve"
	"vrdann/internal/shard"
	"vrdann/internal/sim"
	"vrdann/internal/tensor"
	"vrdann/internal/video"
	"vrdann/internal/vidio"
)

// Video-domain types.
type (
	// Video is a raw frame sequence with ground-truth annotations.
	Video = video.Video
	// Frame is one raw luma frame.
	Frame = video.Frame
	// Mask is a binary segmentation mask.
	Mask = video.Mask
	// Rect is an axis-aligned box.
	Rect = video.Rect
	// SceneSpec describes a synthetic scene for Generate.
	SceneSpec = video.SceneSpec
	// ObjectSpec describes one synthetic moving object.
	ObjectSpec = video.ObjectSpec
	// SeqProfile is a named benchmark-sequence profile.
	SeqProfile = video.SeqProfile
	// ShapeKind selects a synthetic object silhouette.
	ShapeKind = video.ShapeKind
)

// Synthetic object shapes.
const (
	ShapeDisk = video.ShapeDisk
	ShapeBox  = video.ShapeBox
)

// Codec types.
type (
	// EncoderConfig holds the video-encoder parameters (block size, QP,
	// B-frame policy, motion search interval).
	EncoderConfig = codec.Config
	// Stream is an encoded bitstream plus structural metadata.
	Stream = codec.Stream
	// DecodeResult is the decoder output (frames, motion vectors, ordering).
	DecodeResult = codec.DecodeResult
	// MotionVector is one macro-block's referencing relationship.
	MotionVector = codec.MotionVector
	// FrameType is I, P or B.
	FrameType = codec.FrameType
)

// Recognition types.
type (
	// Pipeline is the VR-DANN algorithm (NN-L on anchors, MV reconstruction
	// plus NN-S refinement on B-frames).
	Pipeline = core.Pipeline
	// Result is a segmentation run's output.
	Result = core.Result
	// DetectionResult is a detection run's output.
	DetectionResult = core.DetectionResult
	// TrainConfig controls NN-S training.
	TrainConfig = core.TrainConfig
	// RefineNet is the lightweight NN-S network.
	RefineNet = nn.RefineNet
	// FCN is the trainable fully-convolutional network playing NN-L.
	FCN = nn.FCN
	// NNLTrainConfig controls NN-L training.
	NNLTrainConfig = core.NNLTrainConfig
	// Segmenter produces a mask for a decoded frame (NN-L role).
	Segmenter = segment.Segmenter
	// BoxDetector produces scored boxes for a decoded frame.
	BoxDetector = core.BoxDetector
	// Detection is one scored box.
	Detection = detect.Detection
	// ReconMask is a 2-bit-per-pixel B-frame reconstruction.
	ReconMask = segment.ReconMask
	// StreamingPipeline is the incremental, bounded-memory pipeline form.
	StreamingPipeline = core.StreamingPipeline
	// MaskOut is one result emitted by the streaming pipeline.
	MaskOut = core.MaskOut
	// PipelineOption configures a Pipeline built with NewPipeline.
	PipelineOption = core.Option
)

// WithWorkers overlaps NN-L anchor inference with B-frame reconstruction
// and NN-S refinement on n goroutines (the software analog of the paper's
// agent unit); n <= 1 keeps the serial decode-order loop. Results are
// bit-identical for every n.
func WithWorkers(n int) PipelineOption { return core.WithWorkers(n) }

// Quantized execution tier: NN-S compiled to the arithmetic the modeled
// NPU executes, plus residual-driven sparsity (DESIGN.md §12).
type (
	// QuantRefineNet is NN-S compiled to the int8 execution tier:
	// per-channel weight scales, int8 im2col, int8×int8→int32 GEMM and
	// requantization between layers. Its accuracy contract is an F-score
	// delta gate (≤ 0.5 points against the float path), not bit identity.
	QuantRefineNet = nn.QuantRefineNet
	// Tensor is the dense CHW tensor the networks exchange; the facade
	// exposes it so callers can build quantization calibration inputs.
	Tensor = tensor.Tensor
)

// NewTensor allocates a zeroed CHW tensor.
func NewTensor(c, h, w int) *Tensor { return tensor.New(c, h, w) }

// QuantizeRefiner compiles a trained NN-S to the int8 execution tier,
// calibrating its static activation scales on the given inputs — use
// tensors drawn from the {0, 0.5, 1} alphabet the deployed sandwich
// input actually carries. Deploy the result with WithQuant (single
// pipeline) or ServeConfig.QuantNNS (serving layer).
func QuantizeRefiner(net *RefineNet, calibration []*Tensor) (*QuantRefineNet, error) {
	return nn.NewQuantRefineNet(net, calibration)
}

// WithQuant routes B-frame refinement through the int8 execution tier
// instead of the float NN-S.
func WithQuant(q *QuantRefineNet) PipelineOption {
	return func(p *Pipeline) { p.Quant = q }
}

// WithResidualSkip enables residual-driven sparsity: B-frame blocks whose
// decoded residual energy stays at or below threshold keep their
// MV-reconstructed mask pixels, and NN-S refines only the bounding
// rectangle of the dirty blocks (a frame with none skips NN-S entirely).
// Skipped/dirty block counts land on the quant/blocks-* counters of an
// attached Collector.
func WithResidualSkip(threshold int) PipelineOption {
	return func(p *Pipeline) {
		p.SkipResidual = true
		p.SkipThreshold = threshold
	}
}

// Observability types.
type (
	// Collector gathers per-stage latency histograms, queue-depth gauges,
	// counters and optional span traces from an instrumented run. A nil
	// collector is safe everywhere and costs one pointer check per site.
	Collector = obs.Collector
	// ObsReport is an immutable snapshot of a Collector (JSON-friendly).
	ObsReport = obs.Report
	// SpanEvent is one traced stage execution.
	SpanEvent = obs.SpanEvent
	// Tracer receives span events from an instrumented run.
	Tracer = obs.Tracer
)

// NewCollector builds an empty metrics collector; attach it with
// WithObserver or by setting Pipeline.Obs / StreamingPipeline.Obs.
func NewCollector() *Collector { return obs.New() }

// WithObserver attaches a metrics collector to a pipeline built with
// NewPipeline.
func WithObserver(c *Collector) PipelineOption { return core.WithObserver(c) }

// DisplayOrderEmit wraps a streaming emit callback so results arrive in
// display order with bounded buffering.
func DisplayOrderEmit(emit func(MaskOut) error) func(MaskOut) error {
	return core.DisplayOrder(emit)
}

// Serving types: the multi-stream layer multiplexing many camera feeds
// onto one shared worker pool (the software counterpart of one accelerator
// board serving several streams).
type (
	// Server admits stream sessions, schedules them fairly on a bounded
	// worker pool, and serves masks bit-identical to a standalone run.
	Server = serve.Server
	// ServeConfig parameterizes a Server (admission cap, queue bounds,
	// overflow policy, frame deadline).
	ServeConfig = serve.Config
	// ServeSession is one admitted stream: submit chunks, await frames.
	ServeSession = serve.Session
	// FrameResult is one served frame (mask, type, drop flag, latency).
	FrameResult = serve.FrameResult
	// LoadGen drives a Server with synthetic multi-stream traffic.
	LoadGen = serve.LoadGen
	// LoadReport aggregates one load-generator run (throughput, latency
	// percentiles, drop and rejection counts).
	LoadReport = serve.LoadReport
	// OverflowPolicy selects reject-vs-wait for a full session queue.
	OverflowPolicy = serve.OverflowPolicy
	// StreamEngine steps one stream's pipeline frame by frame — the unit a
	// serving scheduler multiplexes.
	StreamEngine = core.StreamEngine
	// StreamDecoder decodes a bitstream incrementally with a pruned
	// reference window; Reset reuses it across a session's chunks.
	StreamDecoder = codec.StreamDecoder
	// BatchEngine coalesces NN work from many sessions into fused batched
	// kernel executions; masks stay bit-identical to unbatched runs.
	BatchEngine = batch.Engine
	// BatchConfig parameterizes a BatchEngine (flush threshold, partial
	// flush deadline, refinement network, metrics collector).
	BatchConfig = batch.Config
)

// Queue-overflow policies.
const (
	// OverflowReject fails the submit immediately with an error.
	OverflowReject = serve.Reject
	// OverflowWait blocks the submit until queue space frees.
	OverflowWait = serve.Wait
)

// NewServer starts a multi-stream serving layer and its worker pool. Set
// ServeConfig.MaxBatch > 1 to route NN work through a shared BatchEngine.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.NewServer(cfg) }

// NewBatchEngine builds a standalone cross-session dynamic batcher; a
// Server with MaxBatch > 1 constructs one internally, so this is only
// needed when embedding the batcher in a custom scheduler.
func NewBatchEngine(cfg BatchConfig) *BatchEngine { return batch.New(cfg) }

// Content-addressed mask sharing: sessions serving bit-identical chunks
// under the same model configuration share NN-L/NN-S results through one
// cache, and a broadcast fans one session's decode to many viewers
// (DESIGN.md §13).
type (
	// ContentCache is the shared content-addressed mask cache; a Server
	// with ServeConfig.CacheBytes > 0 constructs one internally, or pass a
	// pre-built cache via ServeConfig.Cache to share it across servers.
	ContentCache = contentcache.Cache
	// ContentCacheConfig parameterizes a ContentCache (byte budget,
	// metrics collector).
	ContentCacheConfig = contentcache.Config
	// ContentKey addresses one cached mask: chunk-bytes digest, display
	// index within the chunk, and model fingerprint.
	ContentKey = contentcache.Key
	// Broadcast is the single-decode fan-out mode: one backing session,
	// many attached viewers receiving every frame result.
	Broadcast = serve.Broadcast
	// BroadcastViewer is one attached consumer of a Broadcast.
	BroadcastViewer = serve.Viewer
)

// NewContentCache builds a standalone content-addressed mask cache for
// sharing across servers via ServeConfig.Cache.
func NewContentCache(cfg ContentCacheConfig) *ContentCache { return contentcache.New(cfg) }

// ChunkDigest hashes encoded chunk bytes for content addressing; equal
// bytes yield equal digests, so identical chunks share cache entries.
func ChunkDigest(data []byte) uint64 { return codec.ChunkDigest(data) }

// ModelFingerprint folds model-identity strings (NN-L label, refinement
// and quantization configuration) into a ContentKey's Model field; cached
// masks are shared only between sessions with equal fingerprints.
func ModelFingerprint(parts ...string) uint64 { return contentcache.Fingerprint(parts...) }

// Sharded multi-node serving: a gateway consistent-hashes stream sessions
// across a fleet of vrserve backends and live-migrates them on failure,
// breaker trips and scale events (DESIGN.md §14).
type (
	// Gateway fronts N serving backends behind the single-node session
	// HTTP surface; cmd/vrgate is its command-line wrapper.
	Gateway = shard.Gateway
	// GatewayConfig parameterizes a Gateway (backends, hash-ring virtual
	// nodes, health probing, node breaker, proxy timeout).
	GatewayConfig = shard.Config
	// GatewayClient is a minimal client for the session surface, usable
	// against a Gateway or a single backend alike.
	GatewayClient = shard.Client
	// HashRing is the consistent-hash ring placing session keys on nodes.
	HashRing = shard.Ring
	// NodeStatus is one backend's health, breaker and load state.
	NodeStatus = shard.NodeStatus
	// LoadInfo is a backend's /healthz load report (sessions, queue
	// depth, breaker state, admission headroom, draining flag).
	LoadInfo = serve.LoadInfo
)

// Online per-stream adaptation: each session fine-tunes a private clone of
// NN-S on pseudo-labels harvested from its own NN-L anchor segmentations,
// strictly in serving idle gaps, promoting weights only when they beat the
// serving set and rolling back on drift regression (DESIGN.md §16).
type (
	// Adapter is one session's online-adaptation state: the pseudo-label
	// ring, background trainer, promotion mailbox and rolling drift monitor.
	Adapter = adapt.Adapter
	// AdaptConfig tunes an Adapter. ServeConfig.Adapt takes one as the
	// per-session tuning template (the server fills the wiring fields).
	AdaptConfig = adapt.Config
	// AdaptExample is one harvested (anchor luma, NN-L mask) pseudo-label.
	AdaptExample = adapt.Example
	// AdaptPromotion is one staged weight swap, picked up by the serving
	// layer at the next safe (chunk) boundary.
	AdaptPromotion = adapt.Promotion
)

// NewAdapter starts a session adapter and its background trainer; a Server
// with ServeConfig.Adapt non-nil constructs one per session internally, so
// this is only needed when embedding the tier in a custom scheduler.
func NewAdapter(cfg AdaptConfig) (*Adapter, error) { return adapt.New(cfg) }

// AdaptedFingerprint derives the content-cache fingerprint of a session
// serving adapted weights from its base-model fingerprint: adapting
// sessions never share cached masks with base-model sessions or with each
// other, at any weights version.
func AdaptedFingerprint(base uint64, session string, version uint64) uint64 {
	return contentcache.AdaptedFingerprint(base, session, version)
}

// NewGateway builds a sharding gateway over the configured backends and
// starts its health prober.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return shard.NewGateway(cfg) }

// NewHashRing builds a consistent-hash ring with the given virtual-node
// count per backend (0 picks the default).
func NewHashRing(vnodes int) *HashRing { return shard.NewRing(vnodes) }

// Simulator types.
type (
	// SimParams bundles the SoC model configuration (Table II defaults).
	SimParams = sim.Params
	// SimReport is one scheme's simulated performance and energy.
	SimReport = sim.Report
	// Scheme selects the simulated pipeline.
	Scheme = sim.Scheme
	// Workload is the simulator-facing description of an encoded video.
	Workload = sim.Workload
	// SimTrace records unit-occupancy events of a simulated run.
	SimTrace = sim.Trace
)

// Simulated schemes.
const (
	SchemeOSVOS          = sim.SchemeOSVOS
	SchemeFAVOS          = sim.SchemeFAVOS
	SchemeDFF            = sim.SchemeDFF
	SchemeEuphrates2     = sim.SchemeEuphrates2
	SchemeEuphrates4     = sim.SchemeEuphrates4
	SchemeVRDANNSerial   = sim.SchemeVRDANNSerial
	SchemeVRDANNParallel = sim.SchemeVRDANNParallel
)

// Frame types.
const (
	IFrame = codec.IFrame
	PFrame = codec.PFrame
	BFrame = codec.BFrame
)

// SuiteProfiles is the 20-sequence DAVIS-like benchmark suite.
var SuiteProfiles = video.SuiteProfiles

// DetectionProfiles is the speed-classed VID-like detection suite.
var DetectionProfiles = video.DetectionProfiles

// Generate renders a synthetic scene with exact ground truth.
func Generate(spec SceneSpec) *Video { return video.Generate(spec) }

// MakeSequence renders one benchmark sequence at the given geometry.
func MakeSequence(p SeqProfile, w, h, frames int) *Video { return video.MakeSequence(p, w, h, frames) }

// MakeSuite renders the whole 20-sequence benchmark suite.
func MakeSuite(w, h, frames int) []*Video { return video.MakeSuite(w, h, frames) }

// MakeTrainingSet renders the held-out training sequences.
func MakeTrainingSet(w, h, frames int) []*Video { return video.MakeTrainingSet(w, h, frames) }

// MakeDetectionSuite renders the detection sequences.
func MakeDetectionSuite(w, h, frames int) []*Video { return video.MakeDetectionSuite(w, h, frames) }

// Concat joins two sequences of identical geometry (a hard scene cut); the
// encoder detects the cut and refreshes with an I-frame.
func Concat(a, b *Video) *Video { return video.Concat(a, b) }

// DefaultEncoderConfig returns the default encoder settings (H.265-like
// 8×8 blocks, auto B ratio, auto search interval).
func DefaultEncoderConfig() EncoderConfig { return codec.DefaultConfig() }

// Encode compresses a video.
func Encode(v *Video, cfg EncoderConfig) (*Stream, error) { return codec.Encode(v, cfg) }

// Decode fully decodes a bitstream (all pixels).
func Decode(data []byte) (*DecodeResult, error) { return codec.Decode(data, codec.DecodeFull) }

// DecodeSideInfo decodes I/P pixels and B-frame motion vectors only — the
// decoder contract VR-DANN exploits.
func DecodeSideInfo(data []byte) (*DecodeResult, error) {
	return codec.Decode(data, codec.DecodeSideInfo)
}

// NewOracleSegmenter returns a calibrated stand-in for a large segmentation
// network: ground truth perturbed by boundary noise of the given strength.
func NewOracleSegmenter(label string, gt []*Mask, strength float64, radius int, seed int64) Segmenter {
	return segment.NewOracle(label, gt, strength, radius, seed)
}

// NewOracleBoxDetector is the detection analogue of NewOracleSegmenter.
func NewOracleBoxDetector(label string, gt []Rect, jitter float64, seed int64) BoxDetector {
	return &baseline.OracleBoxDetector{Label: label, GT: gt, Jitter: jitter, Seed: seed}
}

// DefaultTrainConfig returns the paper's NN-S training setup (2 epochs).
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// TrainRefiner trains NN-S on the given videos per Sec III-B.
func TrainRefiner(videos []*Video, enc EncoderConfig, tc TrainConfig) (*RefineNet, error) {
	return core.TrainNNS(videos, enc, tc)
}

// DefaultNNLTrainConfig returns the default NN-L training setup.
func DefaultNNLTrainConfig() NNLTrainConfig { return core.DefaultNNLTrainConfig() }

// TrainSegmenter trains the pure-Go NN-L from scratch on raw frames and
// ground truth. Combined with TrainRefiner this yields the fully learned
// pipeline with no oracle anywhere.
func TrainSegmenter(videos []*Video, tc NNLTrainConfig) (*FCN, error) {
	return core.TrainNNL(videos, tc)
}

// NewNetSegmenter wraps a trained network as the pipeline's NN-L.
func NewNetSegmenter(label string, net *FCN) Segmenter {
	return &segment.NetSegmenter{Label: label, Net: net}
}

// NewPipeline builds a VR-DANN pipeline with refinement enabled; pass
// WithWorkers to enable the overlapped execution mode.
func NewPipeline(nnl Segmenter, nns *RefineNet, opts ...PipelineOption) *Pipeline {
	return core.New(nnl, nns, opts...)
}

// EvaluateSegmentation returns the mean boundary F-Score and region IoU (J)
// of predictions against ground truth.
func EvaluateSegmentation(pred, gt []*Mask) (f, j float64) {
	var s segment.SeqScore
	for i := range pred {
		s.Add(pred[i], gt[i])
	}
	return s.Mean()
}

// EvaluateDetection returns average precision at the given IoU threshold.
func EvaluateDetection(preds [][]Detection, gtBoxes [][]Rect, iouThresh float64) float64 {
	return detect.AP(preds, gtBoxes, iouThresh)
}

// GTBoxes adapts a video's ground-truth boxes for EvaluateDetection.
func GTBoxes(v *Video) [][]Rect { return detect.GTBoxes(v) }

// DefaultSimParams returns the Table II SoC configuration.
func DefaultSimParams() SimParams { return sim.DefaultParams() }

// NewWorkload extracts a simulator workload from decoder output, scaled to
// the target resolution (use the paper's 854×480 for headline numbers).
func NewWorkload(name string, dec *DecodeResult, p SimParams, targetW, targetH int) Workload {
	return sim.FromDecode(name, dec, p.Agent, targetW, targetH)
}

// Simulate runs one scheme over a workload on the SoC model.
func Simulate(p SimParams, scheme Scheme, w Workload) SimReport {
	return sim.New(p).Run(scheme, w)
}

// SimulateTraced is Simulate with an execution-timeline trace (the
// tool-side equivalent of the paper's Fig 7).
func SimulateTraced(p SimParams, scheme Scheme, w Workload) (SimReport, *SimTrace) {
	return sim.New(p).RunTraced(scheme, w)
}

// SimulateRealtime runs a scheme against a live camera source at the given
// frame rate and reports per-frame latency and deadline behaviour.
func SimulateRealtime(p SimParams, scheme Scheme, w Workload, sourceFPS float64) sim.RealtimeReport {
	return sim.New(p).RunRealtime(scheme, w, sourceFPS)
}

// --- Interchange I/O (PGM, Y4M, overlays) ---

// WritePGM writes one frame as binary PGM (P5).
func WritePGM(w io.Writer, f *Frame) error { return vidio.WritePGM(w, f) }

// ReadPGM parses a binary PGM (P5) image.
func ReadPGM(r io.Reader) (*Frame, error) { return vidio.ReadPGM(r) }

// WriteMaskPGM writes a segmentation mask as a black/white PGM.
func WriteMaskPGM(w io.Writer, m *Mask) error { return vidio.WriteMaskPGM(w, m) }

// ReadMaskPGM parses a PGM into a mask (pixels ≥ 128 are foreground).
func ReadMaskPGM(r io.Reader) (*Mask, error) { return vidio.ReadMaskPGM(r) }

// Overlay renders a frame with the mask boundary marked and the background
// dimmed, for visual inspection.
func Overlay(f *Frame, m *Mask) *Frame { return vidio.Overlay(f, m) }

// WriteY4M writes a sequence as a mono-color-space YUV4MPEG2 stream.
func WriteY4M(w io.Writer, v *Video) error { return vidio.WriteY4M(w, v) }

// ReadY4M parses a mono-color-space YUV4MPEG2 stream, e.g. real grayscale
// footage converted with standard tools.
func ReadY4M(r io.Reader) (*Video, error) { return vidio.ReadY4M(r) }
