// Detection: VR-DANN applied to video object detection (Sec III-B), head to
// head with the Euphrates-style key-frame extrapolation the paper compares
// against in Fig 11. The detected box becomes a rectangular mask, B-frames
// propagate it through the bitstream's motion vectors, and the propagated
// mask's bounding box is the B-frame detection.
package main

import (
	"fmt"
	"log"

	"vrdann"
)

func main() {
	// One sequence per speed class, mirroring Fig 11's grouping. Evaluation
	// averages AP over IoU thresholds 0.5..0.8 so the box-propagation error
	// is visible (plain AP@0.5 saturates on synthetic content).
	thresholds := []float64{0.5, 0.6, 0.7, 0.8}
	for _, profile := range []vrdann.SeqProfile{
		vrdann.DetectionProfiles[1],  // slow
		vrdann.DetectionProfiles[6],  // medium
		vrdann.DetectionProfiles[10], // fast
	} {
		vid := vrdann.MakeSequence(profile, 192, 128, 48)
		stream, err := vrdann.Encode(vid, vrdann.DefaultEncoderConfig())
		if err != nil {
			log.Fatal(err)
		}
		det := vrdann.NewOracleBoxDetector("detector", vid.Boxes, 3.2, 11)
		gts := vrdann.GTBoxes(vid)
		mAP := func(preds [][]vrdann.Detection) float64 {
			var s float64
			for _, t := range thresholds {
				s += vrdann.EvaluateDetection(preds, gts, t)
			}
			return s / float64(len(thresholds))
		}

		res, err := (&vrdann.Pipeline{}).RunDetection(stream.Data, det)
		if err != nil {
			log.Fatal(err)
		}
		// Per-frame upper bound for reference: detector on every frame.
		perFrame := make([][]vrdann.Detection, vid.Len())
		for d := range perFrame {
			perFrame[d] = det.Detect(nil, d)
		}
		fmt.Printf("%-12s (speed %.1f): VR-DANN mAP=%.3f (detector on %d/%d frames) vs per-frame mAP=%.3f\n",
			profile.Name, profile.Speed, mAP(res.Detections), res.Stats.NNLRuns, vid.Len(), mAP(perFrame))
	}

	// Simulated cost at 854x480 on a medium sequence. (On very fast content
	// the adaptive encoder drops most B-frames — the paper's own mitigation —
	// and VR-DANN's advantage over Euphrates narrows or inverts.)
	vid := vrdann.MakeSequence(vrdann.DetectionProfiles[6], 96, 64, 48)
	stream, err := vrdann.Encode(vid, vrdann.DefaultEncoderConfig())
	if err != nil {
		log.Fatal(err)
	}
	dec, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	params := vrdann.DefaultSimParams()
	w := vrdann.NewWorkload(vid.Name, dec, params, 854, 480)
	e2 := vrdann.Simulate(params, vrdann.SchemeEuphrates2, w)
	vr := vrdann.Simulate(params, vrdann.SchemeVRDANNParallel, w)
	fmt.Printf("\nsimulated 854x480 (%s): Euphrates-2 %.1f fps, VR-DANN-parallel %.1f fps (%.2fx)\n",
		vid.Name, e2.FPS(), vr.FPS(), e2.TotalNS/vr.TotalNS)
}
