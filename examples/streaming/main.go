// Streaming: the bounded-memory, frame-at-a-time form of the pipeline —
// the software mirror of the agent unit. Masks are emitted as soon as they
// can be computed and re-sequenced into display order with bounded
// buffering; the working set of reference segmentations stays constant no
// matter how long the stream runs.
package main

import (
	"fmt"
	"log"

	"vrdann"
)

func main() {
	// A long sequence to make the bounded-memory point.
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[6], 96, 64, 96) // "cows"
	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		log.Fatal(err)
	}

	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 12), enc, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	sp := &vrdann.StreamingPipeline{
		NNL:    vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.05, 3, 1),
		NNS:    nns,
		Refine: true,
	}

	emitted := 0
	var f, j float64
	maxSegs, err := sp.RunInstrumented(stream.Data, vrdann.DisplayOrderEmit(func(m vrdann.MaskOut) error {
		// Results arrive strictly in display order; consume them one by one
		// the way a live overlay renderer would.
		ff, jj := vrdann.EvaluateSegmentation([]*vrdann.Mask{m.Mask}, []*vrdann.Mask{vid.Masks[m.Display]})
		f += ff
		j += jj
		emitted++
		if m.Display%24 == 0 {
			fmt.Printf("  frame %3d (%s): running J=%.3f\n", m.Display, m.Type, j/float64(emitted))
		}
		return nil
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d frames in display order: F=%.3f J=%.3f\n",
		emitted, f/float64(emitted), j/float64(emitted))
	fmt.Printf("working set peaked at %d reference segmentations (independent of stream length)\n", maxSegs)
}
