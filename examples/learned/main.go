// Learned: the fully learned pipeline — both networks trained from scratch
// in pure Go, no oracle anywhere. NN-L (an FCN) learns frame segmentation
// from the held-out training sequences; NN-S learns B-frame refinement from
// reconstructed sandwiches (the paper's 2-epoch recipe); then the complete
// decoder-assisted flow runs on unseen benchmark content.
package main

import (
	"fmt"
	"log"
	"time"

	"vrdann"
)

func main() {
	train := vrdann.MakeTrainingSet(64, 48, 16)

	start := time.Now()
	fmt.Println("training NN-L (FCN, 250 steps)...")
	nnl, err := vrdann.TrainSegmenter(train, vrdann.DefaultNNLTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %.1fs\n", time.Since(start).Seconds())

	start = time.Now()
	fmt.Println("training NN-S (2 epochs)...")
	enc := vrdann.DefaultEncoderConfig()
	nns, err := vrdann.TrainRefiner(train, enc, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %.1fs\n", time.Since(start).Seconds())

	for _, name := range []string{"cows", "dog", "camel"} {
		var profile vrdann.SeqProfile
		for _, p := range vrdann.SuiteProfiles {
			if p.Name == name {
				profile = p
			}
		}
		vid := vrdann.MakeSequence(profile, 64, 48, 24)
		stream, err := vrdann.Encode(vid, enc)
		if err != nil {
			log.Fatal(err)
		}
		p := vrdann.NewPipeline(vrdann.NewNetSegmenter("FCN", nnl), nns)
		res, err := p.RunSegmentation(stream.Data)
		if err != nil {
			log.Fatal(err)
		}
		f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
		fmt.Printf("%-8s fully learned: F=%.3f J=%.3f (NN-L on %d/%d frames)\n",
			name, f, j, res.Stats.NNLRuns, vid.Len())
	}
}
