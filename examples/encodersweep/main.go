// Encodersweep: the Sec VI-C what-if exploration — how encoder settings
// (forced B-frame ratio, motion-vector search interval, macro-block size)
// trade segmentation accuracy against VR-DANN-parallel execution time on
// one sequence. This is the interactive counterpart of Fig 15/16/17.
package main

import (
	"fmt"
	"log"

	"vrdann"
)

func main() {
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[8], 96, 64, 48) // "dog"
	base := vrdann.DefaultEncoderConfig()
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 16), base, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	params := vrdann.DefaultSimParams()

	evaluate := func(enc vrdann.EncoderConfig) (f, j, ms float64, bratio float64) {
		stream, err := vrdann.Encode(vid, enc)
		if err != nil {
			log.Fatal(err)
		}
		nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.08, 2, 3)
		res, err := vrdann.NewPipeline(nnl, nns).RunSegmentation(stream.Data)
		if err != nil {
			log.Fatal(err)
		}
		f, j = vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
		w := vrdann.NewWorkload(vid.Name, res.Decode, params, 854, 480)
		r := vrdann.Simulate(params, vrdann.SchemeVRDANNParallel, w)
		return f, j, r.TotalNS / 1e6, res.Decode.BRatio()
	}

	fmt.Printf("sequence %q, 48 frames — VR-DANN-parallel at 854x480\n\n", vid.Name)

	fmt.Println("B-frame ratio sweep (Fig 15):")
	for _, ratio := range []float64{0.37, 0.5, 0, 0.75} {
		enc := base
		enc.TargetBRatio = ratio
		if ratio > 0.7 {
			enc.MaxBRun = 4
		}
		f, j, ms, br := evaluate(enc)
		label := fmt.Sprintf("%.0f%%", 100*ratio)
		if ratio == 0 {
			label = "auto"
		}
		fmt.Printf("  target %-5s (actual %4.1f%%)  F=%.3f J=%.3f  %6.1f ms\n", label, 100*br, f, j, ms)
	}

	fmt.Println("\nsearch interval sweep (Fig 16):")
	for _, n := range []int{1, 3, 5, 7, 9, 0} {
		enc := base
		enc.SearchInterval = n
		f, j, ms, _ := evaluate(enc)
		label := fmt.Sprintf("n=%d", n)
		if n == 0 {
			label = "auto"
		}
		fmt.Printf("  %-5s F=%.3f J=%.3f  %6.1f ms\n", label, f, j, ms)
	}

	fmt.Println("\nencoding standard sweep (Fig 17):")
	for _, bs := range []int{16, 8} {
		enc := base
		enc.BlockSize = bs
		f, j, ms, _ := evaluate(enc)
		std := "H.265-like (8x8)"
		if bs == 16 {
			std = "H.264-like (16x16)"
		}
		fmt.Printf("  %-20s F=%.3f J=%.3f  %6.1f ms\n", std, f, j, ms)
	}
}
