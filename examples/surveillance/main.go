// Surveillance: the paper's motivating consumer-SoC scenario — a fixed
// camera watching slow-moving subjects for a long stretch. Slow content
// compresses into long B-runs, which is exactly where decoder-assisted
// reconstruction shines: the large network runs on a small fraction of
// frames while accuracy stays at the per-frame baseline's level.
package main

import (
	"fmt"
	"log"

	"vrdann"
)

func main() {
	// A static-camera scene with two slow pedestrians-like blobs and a
	// faster vehicle-like box crossing the field of view.
	scene := vrdann.SceneSpec{
		Name: "lobby-cam", W: 128, H: 96, Frames: 96, Seed: 2024, Noise: 2.5,
		Objects: []vrdann.ObjectSpec{
			{Shape: vrdann.ShapeDisk, Radius: 11, X: 30, Y: 56, VX: 0.35, VY: 0.05,
				Deform: 0.12, DeformRate: 0.3, Intensity: 205, Foreground: true},
			{Shape: vrdann.ShapeDisk, Radius: 9, X: 95, Y: 40, VX: -0.3, VY: 0.1,
				Deform: 0.1, DeformRate: 0.25, Intensity: 230, Foreground: true},
			{Shape: vrdann.ShapeBox, Radius: 13, X: 64, Y: 76, VX: 1.1, VY: 0,
				Intensity: 180, Foreground: true},
		},
	}
	vid := vrdann.Generate(scene)

	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q: %d frames, B ratio %.0f%% (static camera -> long B runs)\n",
		vid.Name, vid.Len(), 100*dec.BRatio())

	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(128, 96, 16), enc, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.08, 2, 7)
	res, err := vrdann.NewPipeline(nnl, nns).RunSegmentation(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
	fmt.Printf("VR-DANN:  F=%.3f J=%.3f with NN-L on only %d/%d frames\n",
		f, j, res.Stats.NNLRuns, vid.Len())

	// The per-frame alternative: run the oracle on every decoded frame.
	full, err := vrdann.Decode(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	perFrame := make([]*vrdann.Mask, vid.Len())
	for d, fr := range full.Frames {
		perFrame[d] = nnl.Segment(fr, d)
	}
	pf, pj := vrdann.EvaluateSegmentation(perFrame, vid.Masks)
	fmt.Printf("per-frame: F=%.3f J=%.3f with NN-L on all %d frames\n", pf, pj, vid.Len())

	// What the SoC sees at 854x480: sustained fps and energy per scheme.
	params := vrdann.DefaultSimParams()
	w := vrdann.NewWorkload(vid.Name, dec, params, 854, 480)
	fmt.Println("simulated SoC at 854x480:")
	for _, sc := range []vrdann.Scheme{vrdann.SchemeFAVOS, vrdann.SchemeVRDANNSerial, vrdann.SchemeVRDANNParallel} {
		r := vrdann.Simulate(params, sc, w)
		fmt.Printf("  %-18s %5.1f fps, %6.1f mJ, %d kernel switches\n",
			sc, r.FPS(), r.Energy.TotalPJ()/1e9, r.Switches)
	}
}
