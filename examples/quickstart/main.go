// Quickstart: the complete VR-DANN flow on one synthetic sequence —
// generate, encode, train NN-S, run the decoder-assisted pipeline, and
// compare its accuracy and workload against running the large network on
// every frame.
package main

import (
	"fmt"
	"log"

	"vrdann"
)

func main() {
	// 1. A synthetic sequence with exact ground truth (stand-in for DAVIS).
	vid := vrdann.MakeSequence(vrdann.SuiteProfiles[6], 96, 64, 32) // "cows"
	fmt.Printf("sequence %q: %d frames of %dx%d\n", vid.Name, vid.Len(), vid.Frames[0].W, vid.Frames[0].H)

	// 2. Encode it with the H.265-like defaults (auto B ratio, auto n).
	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		log.Fatal(err)
	}
	raw := vid.Len() * vid.Frames[0].W * vid.Frames[0].H
	fmt.Printf("encoded: %d bytes (%.1fx compression)\n", len(stream.Data), float64(raw)/float64(len(stream.Data)))

	// 3. Train the lightweight refinement network NN-S (2 epochs, held-out
	//    training sequences — exactly the paper's recipe).
	fmt.Println("training NN-S (2 epochs)...")
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 16), enc, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run VR-DANN: NN-L (here a calibrated oracle standing in for
	//    FAVOS's ROI SegNet) on I/P-frames, motion-vector reconstruction +
	//    NN-S on B-frames.
	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.08, 2, 1)
	pipeline := vrdann.NewPipeline(nnl, nns)
	res, err := pipeline.RunSegmentation(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
	fmt.Printf("VR-DANN accuracy: F-Score=%.3f IoU=%.3f\n", f, j)
	fmt.Printf("workload: NN-L ran %d times, NN-S %d times over %d frames (B ratio %.0f%%)\n",
		res.Stats.NNLRuns, res.Stats.NNSRuns, vid.Len(), 100*res.Decode.BRatio())

	// 5. Simulate the VR-DANN-parallel SoC against per-frame FAVOS at the
	//    paper's 854x480 resolution.
	params := vrdann.DefaultSimParams()
	dec, err := vrdann.DecodeSideInfo(stream.Data)
	if err != nil {
		log.Fatal(err)
	}
	w := vrdann.NewWorkload(vid.Name, dec, params, 854, 480)
	favos := vrdann.Simulate(params, vrdann.SchemeFAVOS, w)
	vrd := vrdann.Simulate(params, vrdann.SchemeVRDANNParallel, w)
	fmt.Printf("simulated 854x480: FAVOS %.1f fps -> VR-DANN-parallel %.1f fps (%.1fx speedup, %.1fx energy reduction)\n",
		favos.FPS(), vrd.FPS(), favos.TotalNS/vrd.TotalNS,
		favos.Energy.TotalPJ()/vrd.Energy.TotalPJ())
}
