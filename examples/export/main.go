// Export: run the VR-DANN pipeline and write inspectable artifacts — the
// raw sequence as Y4M, and per-frame mask / overlay PGMs — into a
// directory, so the segmentation output can be viewed with standard image
// and video tools.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vrdann"
)

func main() {
	out := flag.String("out", "vrdann-export", "output directory")
	seq := flag.String("seq", "dog", "benchmark sequence name")
	frames := flag.Int("frames", 24, "number of frames")
	flag.Parse()

	var profile vrdann.SeqProfile
	found := false
	for _, p := range vrdann.SuiteProfiles {
		if p.Name == *seq {
			profile, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown sequence %q", *seq)
	}
	vid := vrdann.MakeSequence(profile, 96, 64, *frames)

	enc := vrdann.DefaultEncoderConfig()
	stream, err := vrdann.Encode(vid, enc)
	if err != nil {
		log.Fatal(err)
	}
	nns, err := vrdann.TrainRefiner(vrdann.MakeTrainingSet(96, 64, 12), enc, vrdann.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	nnl := vrdann.NewOracleSegmenter("NN-L", vid.Masks, 0.05, 3, 1)
	res, err := vrdann.NewPipeline(nnl, nns).RunSegmentation(stream.Data)
	if err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	// Whole sequence as Y4M.
	y4m, err := os.Create(filepath.Join(*out, vid.Name+".y4m"))
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdann.WriteY4M(y4m, vid); err != nil {
		log.Fatal(err)
	}
	y4m.Close()

	// Per-frame mask and overlay PGMs.
	for d, m := range res.Masks {
		writePGM := func(name string, save func(*os.File) error) {
			f, err := os.Create(filepath.Join(*out, name))
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := save(f); err != nil {
				log.Fatal(err)
			}
		}
		writePGM(fmt.Sprintf("mask-%03d.pgm", d), func(f *os.File) error {
			return vrdann.WriteMaskPGM(f, m)
		})
		writePGM(fmt.Sprintf("overlay-%03d.pgm", d), func(f *os.File) error {
			return vrdann.WritePGM(f, vrdann.Overlay(vid.Frames[d], m))
		})
	}
	f, j := vrdann.EvaluateSegmentation(res.Masks, vid.Masks)
	fmt.Printf("wrote %s/: %s.y4m + %d mask/overlay PGM pairs (F=%.3f J=%.3f)\n",
		*out, vid.Name, vid.Len(), f, j)
}
