# Developer entry points. `make check` is the gate every change must pass:
# vet, build, the full test suite, and the race detector over the packages
# with concurrency (the par worker layer, the parallel tensor/nn kernels
# and the overlapped core pipeline).

GO ?= go
RACE_PKGS := ./internal/par ./internal/core ./internal/tensor ./internal/nn

.PHONY: check vet build test race bench suite

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Serial-vs-parallel kernel and pipeline micro-benchmarks (EXPERIMENTS.md
# "Parallel compute layer" section).
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor ./internal/nn ./internal/core

# Regenerate the paper's tables and figures.
suite:
	$(GO) run ./cmd/benchsuite
