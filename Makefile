# Developer entry points. `make check` is the gate every change must pass:
# formatting, vet, build, the full test suite, the race detector over the
# packages with concurrency (the par worker layer, the parallel tensor/nn
# kernels, the overlapped core pipeline, the obs collector and the
# multi-stream serving layer), and a short coverage-guided fuzz pass over
# the bitstream decoders.

GO ?= go
RACE_PKGS := ./internal/par ./internal/core ./internal/tensor ./internal/nn ./internal/obs ./internal/batch ./internal/serve ./internal/contentcache ./internal/shard ./internal/qos ./internal/adapt
FUZZTIME ?= 5s

.PHONY: check fmt-check vet build test race bench suite fuzz-smoke bench-smoke serve-smoke batch-smoke quant-smoke cache-smoke chaos-smoke gate-smoke qos-smoke adapt-smoke

check: fmt-check vet build test race fuzz-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short coverage-guided runs of the decoder fuzz targets; regressions the
# fuzzer has found live in internal/codec/testdata/fuzz and are replayed by
# plain `go test` as well.
fuzz-smoke:
	$(GO) test ./internal/codec -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/codec -run '^$$' -fuzz '^FuzzStreamDecoder$$' -fuzztime $(FUZZTIME)

# Serial-vs-parallel kernel and pipeline micro-benchmarks (EXPERIMENTS.md
# "Parallel compute layer" section).
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor ./internal/nn ./internal/core

# One cheap end-to-end benchsuite run (JSON, including the per-stage
# profile) to catch wiring breakage without the cost of the full suite.
bench-smoke:
	$(GO) run ./cmd/benchsuite -frames 8 -res 64x48 -json fig3a

# End-to-end self-test of the multi-stream serving layer: load generator
# plus one chunk over loopback HTTP, clean drain. Exit 0 on success.
serve-smoke:
	$(GO) run ./cmd/vrserve -smoke

# The same self-test with NN-S refinement trained at startup, so the
# multi-session batched leg fuses both NN-L and NN-S work and checks its
# masks bit-identical to the unbatched reference.
batch-smoke:
	$(GO) run ./cmd/vrserve -smoke -refine

# The quant leg: -quant compiles the trained NN-S to the int8 execution
# tier and serves it with residual-driven block skipping. The smoke gates
# the served B-frame F-score within 0.5 points of the float reference and
# checks the per-block skip counters surface in server-wide /metrics.
quant-smoke:
	$(GO) run ./cmd/vrserve -smoke -refine -quant

# The content-cache leg: -cache-mb shares anchor and B-frame masks across
# sessions serving bit-identical chunks. The smoke serves four viewers of
# one content through a cached server, gates every mask byte-identical to
# the uncached reference, and checks the hit/miss counters in /metrics.
cache-smoke:
	$(GO) run ./cmd/vrserve -smoke -refine -cache-mb 64

# Short chaos soak under the race detector: concurrent sessions fed 20%
# corrupted chunks through the fault injector; healthy streams must stay
# bit-identical to a clean run and poisoned sessions must resync or close
# with a classified error. (The soak also runs as part of `make race`.)
chaos-smoke:
	$(GO) test -race ./internal/serve -run '^TestChaosSoak$$' -count 1 -v

# Multi-process sharding self-test: vrgate spawns two real vrserve
# processes, streams sessions through the gateway, kills one backend
# mid-stream, and checks every session's masks byte-identical to a
# single-node reference with zero client-visible errors.
gate-smoke:
	@mkdir -p bin
	$(GO) build -o bin/vrserve ./cmd/vrserve
	$(GO) build -o bin/vrgate ./cmd/vrgate
	./bin/vrgate -smoke -vrserve ./bin/vrserve

# The QoS-ladder leg: -qos on serves B-frames on the adaptive degradation
# ladder (full -> refine -> recon -> skip) with premium/free session
# classes. The smoke overloads a ladder-enabled server open-loop, checks
# the cheap rungs fired and their counters surface in /metrics, and pins
# the ?class= session-open parameter (echoed back; unknown values 400).
qos-smoke:
	$(GO) run ./cmd/vrserve -smoke -refine -qos on

# The online-adaptation leg: -adapt on fine-tunes a private NN-S clone per
# session from its own anchor pseudo-labels in serving idle gaps. The smoke
# pins both directions: an unreachable promotion bar serves bit-identical
# to the no-adapt reference while its shadow counters surface in /metrics,
# and forced promotions climb the promotions counter and weights-version
# gauge while frames keep being served across the swaps.
adapt-smoke:
	$(GO) run ./cmd/vrserve -smoke -adapt on

# Regenerate the paper's tables and figures.
suite:
	$(GO) run ./cmd/benchsuite
