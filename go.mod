module vrdann

go 1.22
